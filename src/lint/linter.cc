#include "lint/linter.h"

#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "algebra/expand.h"
#include "algebra/parser.h"
#include "algebra/printer.h"
#include "base/strings.h"
#include "engine/engine.h"
#include "tableau/build.h"
#include "views/capacity.h"
#include "views/redundancy.h"
#include "views/simplify.h"

namespace viewcap {

namespace {

// Stable rule codes (documented in lint/linter.h).
constexpr std::string_view kSyntaxError = "VCL000";
constexpr std::string_view kUndefinedRelation = "VCL001";
constexpr std::string_view kUnknownAttribute = "VCL002";
constexpr std::string_view kEmptyAttrList = "VCL003";
constexpr std::string_view kDuplicateAttribute = "VCL004";
constexpr std::string_view kIdentityProjection = "VCL005";
constexpr std::string_view kDuplicateDefinition = "VCL006";
constexpr std::string_view kShadowedRelation = "VCL007";
constexpr std::string_view kUnusedRelation = "VCL008";
constexpr std::string_view kConflictingDeclaration = "VCL009";
constexpr std::string_view kRedundantDefinition = "VCL101";
constexpr std::string_view kNotSimplified = "VCL102";
constexpr std::string_view kEquivalentDefinitions = "VCL103";
constexpr std::string_view kReconstructible = "VCL104";

/// What the linter knows about a name: its scheme, where it was declared
/// and whether the typed layer can work with it.
struct RelInfo {
  AttrSet scheme;
  SourceSpan decl_span;
  bool is_base = false;
  bool used = false;
  /// True when a typed, base-level defining query exists for the name
  /// (always true for base relations). References to non-analyzable names
  /// exclude a definition from the semantic pass but are not themselves
  /// defects — their defects were already reported where they occurred.
  bool analyzable = false;
};

/// A definition that resolved cleanly, ready for the semantic rules.
struct DefInfo {
  std::size_t view_index = 0;
  std::string view_name;
  std::string name;
  SourceSpan name_span;
  RelId rel = kInvalidRel;
  ExprPtr expanded;  ///< Base-level (Lemma 1.4.1 expansion applied).
  Tableau reduced;   ///< Reduced Algorithm 2.1.1 template of `expanded`.
};

class LintRun {
 public:
  LintRun(const LintOptions& options) : options_(options) {}

  LintResult Run(std::string_view text) {
    std::vector<SyntaxError> syntax_errors;
    AstProgram program = ParseProgramAst(text, syntax_errors);
    for (const SyntaxError& e : syntax_errors) {
      sink_.Report(Severity::kError, kSyntaxError, e.span, e.message);
    }
    StructuralPass(program);
    ReportUnusedRelations();
    if (options_.semantic && !defs_.empty() && !base_ids_.empty() &&
        defs_.size() <= options_.max_semantic_definitions) {
      SemanticPass();
    }
    sink_.Sort();
    return LintResult{sink_.Take()};
  }

 private:
  // ---------------------------------------------------------------- pass 1

  void StructuralPass(const AstProgram& program) {
    std::size_t view_index = 0;
    for (const AstItem& item : program.items) {
      if (item.kind == AstItem::Kind::kSchema) {
        for (const AstRelationDecl& decl : item.relations) {
          DeclareRelation(decl);
        }
      } else {
        for (const AstDefinition& def : item.view.definitions) {
          LintDefinition(item.view, view_index, def);
        }
        ++view_index;
      }
    }
  }

  void DeclareRelation(const AstRelationDecl& decl) {
    std::optional<AttrSet> scheme =
        CheckAttrList(decl.attributes, decl.name_span,
                      StrCat("relation '", decl.name, "'"));
    if (!scheme.has_value()) return;
    auto it = env_.find(decl.name);
    if (it != env_.end()) {
      if (it->second.scheme == *scheme) {
        sink_.Report(Severity::kWarning, kConflictingDeclaration,
                     decl.name_span,
                     StrCat("redeclaration of relation '", decl.name, "'"),
                     StrCat("previously declared at ",
                            ToString(it->second.decl_span)));
      } else {
        sink_.Report(
            Severity::kError, kConflictingDeclaration, decl.name_span,
            StrCat("relation '", decl.name,
                   "' redeclared with a different scheme"),
            StrCat("previously declared at ",
                   ToString(it->second.decl_span), " as ",
                   viewcap::ToString(it->second.scheme, catalog_)));
      }
      return;
    }
    Result<RelId> rel = catalog_.AddRelation(decl.name, *scheme);
    if (!rel.ok()) return;  // Unreachable: emptiness/conflicts handled above.
    env_.emplace(decl.name, RelInfo{*scheme, decl.name_span,
                                    /*is_base=*/true, /*used=*/false,
                                    /*analyzable=*/true});
    base_ids_.push_back(*rel);
    base_names_.push_back(decl.name);
  }

  /// Shared checks for projection lists and declaration schemes: emptiness
  /// (VCL003) and duplicates (VCL004). Returns the interned set, or nullopt
  /// when empty.
  std::optional<AttrSet> CheckAttrList(const std::vector<AstAttr>& attrs,
                                       const SourceSpan& anchor,
                                       const std::string& what) {
    if (attrs.empty()) {
      sink_.Report(Severity::kError, kEmptyAttrList, anchor,
                   StrCat(what, " has an empty attribute list"));
      return std::nullopt;
    }
    std::set<std::string_view> seen;
    std::vector<AttrId> ids;
    ids.reserve(attrs.size());
    for (const AstAttr& attr : attrs) {
      if (!seen.insert(attr.name).second) {
        sink_.Report(Severity::kWarning, kDuplicateAttribute, attr.span,
                     StrCat("duplicate attribute '", attr.name, "' in ",
                            what));
      }
      ids.push_back(catalog_.AddAttribute(attr.name));
    }
    return AttrSet(std::move(ids));
  }

  /// Result of the structural walk over one raw expression.
  struct ExprScan {
    std::optional<AttrSet> trs;  ///< Unknown when resolution failed below.
    bool clean = true;           ///< No structural defect inside.
    bool analyzable = true;      ///< Every referenced name is analyzable.
  };

  ExprScan ScanExpr(const AstExpr& expr) {
    ExprScan scan;
    switch (expr.kind) {
      case AstExpr::Kind::kRel: {
        auto it = env_.find(expr.rel);
        if (it == env_.end()) {
          sink_.Report(Severity::kError, kUndefinedRelation, expr.span,
                       StrCat("undefined relation '", expr.rel, "'"));
          scan.clean = false;
          scan.analyzable = false;
          return scan;
        }
        it->second.used = true;
        scan.analyzable = it->second.analyzable;
        scan.trs = it->second.scheme;
        return scan;
      }
      case AstExpr::Kind::kProject: {
        ExprScan child = ScanExpr(*expr.children.front());
        scan.clean = child.clean;
        scan.analyzable = child.analyzable;
        std::optional<AttrSet> attrs =
            CheckAttrList(expr.projection, expr.span, "projection");
        if (!attrs.has_value()) {
          scan.clean = false;
          return scan;  // TRS unknown.
        }
        if (child.trs.has_value()) {
          bool typed = true;
          for (const AstAttr& attr : expr.projection) {
            AttrId id = catalog_.AddAttribute(attr.name);
            if (!child.trs->Contains(id)) {
              sink_.Report(
                  Severity::kError, kUnknownAttribute, attr.span,
                  StrCat("attribute '", attr.name,
                         "' is not in the operand's scheme ",
                         viewcap::ToString(*child.trs, catalog_)));
              typed = false;
            }
          }
          if (typed && *attrs == *child.trs) {
            sink_.Report(Severity::kNote, kIdentityProjection, expr.span,
                         StrCat("projection onto the full scheme ",
                                viewcap::ToString(*attrs, catalog_),
                                " is the identity"));
          }
          if (!typed) scan.clean = false;
        }
        scan.trs = std::move(attrs);
        return scan;
      }
      case AstExpr::Kind::kJoin: {
        AttrSet trs;
        bool trs_known = true;
        for (const AstExprPtr& child : expr.children) {
          ExprScan c = ScanExpr(*child);
          scan.clean = scan.clean && c.clean;
          scan.analyzable = scan.analyzable && c.analyzable;
          if (c.trs.has_value()) {
            trs = trs.Union(*c.trs);
          } else {
            trs_known = false;
          }
        }
        if (trs_known) scan.trs = std::move(trs);
        return scan;
      }
    }
    return scan;
  }

  void LintDefinition(const AstView& view, std::size_t view_index,
                      const AstDefinition& def) {
    if (def.query == nullptr) return;  // Dropped during syntax recovery.
    ExprScan scan = ScanExpr(*def.query);
    auto it = env_.find(def.name);
    if (it != env_.end()) {
      if (it->second.is_base) {
        sink_.Report(Severity::kError, kShadowedRelation, def.name_span,
                     StrCat("definition '", def.name,
                            "' shadows a base relation"),
                     StrCat("relation declared at ",
                            ToString(it->second.decl_span)));
      } else {
        sink_.Report(Severity::kError, kDuplicateDefinition, def.name_span,
                     StrCat("view relation '", def.name,
                            "' is defined twice"),
                     StrCat("first defined at ",
                            ToString(it->second.decl_span)));
      }
      return;
    }
    if (!scan.trs.has_value()) return;  // Defects already reported.
    RelInfo info;
    info.scheme = *scan.trs;
    info.decl_span = def.name_span;
    if (!scan.clean || !scan.analyzable) {
      env_.emplace(def.name, std::move(info));
      return;
    }
    // The definition resolved cleanly: lower it through the typed layer and
    // flatten view-of-view references (Lemma 1.4.1) for the semantic pass.
    Result<ExprPtr> lowered = LowerExpr(catalog_, *def.query);
    if (!lowered.ok()) {
      env_.emplace(def.name, std::move(info));
      return;
    }
    Result<ExprPtr> expanded = Expand(catalog_, *lowered, known_);
    Result<RelId> rel = catalog_.AddRelation(def.name, (*lowered)->trs());
    if (!expanded.ok() || !rel.ok()) {
      env_.emplace(def.name, std::move(info));
      return;
    }
    info.analyzable = true;
    env_.emplace(def.name, std::move(info));
    known_.emplace(*rel, *expanded);
    defs_.push_back(DefInfo{view_index, view.name, def.name, def.name_span,
                            *rel, std::move(*expanded), Tableau{}});
  }

  void ReportUnusedRelations() {
    if (defs_.empty() && known_.empty()) return;  // No definitions at all.
    bool any_definition = false;
    for (const auto& [name, info] : env_) {
      if (!info.is_base) any_definition = true;
    }
    if (!any_definition) return;
    for (const std::string& name : base_names_) {
      const RelInfo& info = env_.at(name);
      if (!info.used) {
        sink_.Report(Severity::kWarning, kUnusedRelation, info.decl_span,
                     StrCat("relation '", name,
                            "' is never read by any view definition"));
      }
    }
  }

  // ---------------------------------------------------------------- pass 2

  void SemanticPass() {
    const AttrSet universe = catalog_.Universe(base_ids_);
    SymbolPool pool;
    for (DefInfo& def : defs_) {
      Result<Tableau> t = BuildTableau(catalog_, universe, *def.expanded,
                                       pool);
      if (!t.ok()) return;  // Cannot happen for lowered queries; bail out.
      def.reduced = engine_.Reduced(*t);
    }
    std::vector<bool> flagged(defs_.size(), false);
    FindEquivalentDefinitions(flagged);
    FindRedundantAndNonSimple(universe, flagged);
    FindReconstructible(universe, flagged);
  }

  /// VCL103: pairwise mapping equivalence through the engine's interning
  /// store (canonical-key prefilter plus homomorphism confirmation happen
  /// inside Intern, once per definition rather than once per pair).
  void FindEquivalentDefinitions(std::vector<bool>& flagged) {
    std::vector<TableauId> ids;
    ids.reserve(defs_.size());
    for (const DefInfo& def : defs_) ids.push_back(engine_.Intern(def.reduced));
    for (std::size_t j = 0; j < defs_.size(); ++j) {
      for (std::size_t i = 0; i < j; ++i) {
        if (ids[i] != ids[j]) continue;
        sink_.Report(
            Severity::kWarning, kEquivalentDefinitions, defs_[j].name_span,
            StrCat("defining query of '", defs_[j].name,
                   "' is equivalent to that of '", defs_[i].name, "'"),
            StrCat("'", defs_[i].name, "' is defined at ",
                   ToString(defs_[i].name_span),
                   "; equal up to canonical form of their tableaux"));
        // Exclude both sides from the closure rules: each is trivially
        // redundant via its twin, which would only restate this finding.
        flagged[i] = true;
        flagged[j] = true;
        break;
      }
    }
  }

  /// VCL101 and VCL102: per-view redundancy (Theorem 3.1.4) and simplicity
  /// (Section 4 normal form).
  void FindRedundantAndNonSimple(const AttrSet& universe,
                                 std::vector<bool>& flagged) {
    std::map<std::size_t, std::vector<std::size_t>> by_view;
    for (std::size_t i = 0; i < defs_.size(); ++i) {
      by_view[defs_[i].view_index].push_back(i);
    }
    for (const auto& [view_index, members] : by_view) {
      std::vector<QuerySet::Member> qs_members;
      qs_members.reserve(members.size());
      for (std::size_t i : members) {
        qs_members.push_back({defs_[i].rel, defs_[i].reduced});
      }
      Result<QuerySet> set =
          QuerySet::Create(&catalog_, universe, std::move(qs_members));
      if (!set.ok()) continue;
      for (std::size_t pos = 0; pos < members.size(); ++pos) {
        const DefInfo& def = defs_[members[pos]];
        if (flagged[members[pos]]) continue;
        if (members.size() > 1) {
          Result<RedundancyResult> red =
              IsRedundant(engine_, *set, pos, options_.limits);
          if (red.ok() && red->redundant) {
            std::string witness =
                red->membership.witness != nullptr
                    ? StrCat("reconstructible as ",
                             viewcap::ToString(red->membership.witness,
                                               catalog_))
                    : std::string();
            sink_.Report(
                Severity::kWarning, kRedundantDefinition, def.name_span,
                StrCat("definition '", def.name,
                       "' is redundant: it is answerable from the view's "
                       "other definitions (Theorem 3.1.4)"),
                std::move(witness));
            flagged[members[pos]] = true;
            continue;
          }
        }
        Result<SimplicityResult> simple =
            IsSimple(engine_, &catalog_, *set, pos, options_.limits);
        if (simple.ok() && !simple->simple &&
            !simple->membership.budget_exhausted) {
          sink_.Report(
              Severity::kWarning, kNotSimplified, def.name_span,
              StrCat("definition '", def.name,
                     "' is not simple: view '", def.view_name,
                     "' is not in the Section 4 simplified normal form"),
              "it is answerable from its own proper projections and the "
              "other definitions; run `simplify` to normalize");
          flagged[members[pos]] = true;
        }
      }
    }
  }

  /// VCL104: derivability from the other views' definitions.
  void FindReconstructible(const AttrSet& universe,
                           std::vector<bool>& flagged) {
    std::set<std::size_t> views;
    for (const DefInfo& def : defs_) views.insert(def.view_index);
    if (views.size() < 2) return;
    for (std::size_t i = 0; i < defs_.size(); ++i) {
      if (flagged[i]) continue;
      std::vector<QuerySet::Member> others;
      for (std::size_t j = 0; j < defs_.size(); ++j) {
        if (defs_[j].view_index != defs_[i].view_index) {
          others.push_back({defs_[j].rel, defs_[j].reduced});
        }
      }
      if (others.empty()) continue;
      Result<QuerySet> set =
          QuerySet::Create(&catalog_, universe, std::move(others));
      if (!set.ok()) continue;
      CapacityOracle oracle(&engine_, *set, options_.limits);
      Result<MembershipResult> member = oracle.Contains(defs_[i].reduced);
      if (member.ok() && member->member) {
        std::string witness =
            member->witness != nullptr
                ? StrCat("derivable as ",
                         viewcap::ToString(member->witness, catalog_))
                : std::string();
        sink_.Report(
            Severity::kNote, kReconstructible, defs_[i].name_span,
            StrCat("definition '", defs_[i].name,
                   "' is derivable from the definitions of the other views"),
            std::move(witness));
      }
    }
  }

  const LintOptions& options_;
  DiagnosticSink sink_;
  Catalog catalog_;
  Engine engine_{&catalog_};  // Shared by every semantic rule of the run.
  std::map<std::string, RelInfo> env_;
  std::vector<RelId> base_ids_;
  std::vector<std::string> base_names_;
  Definitions known_;
  std::vector<DefInfo> defs_;
};

}  // namespace

std::size_t LintResult::Count(Severity severity) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

LintResult Linter::Run(std::string_view program_text) const {
  LintRun run(options_);
  return run.Run(program_text);
}

}  // namespace viewcap
