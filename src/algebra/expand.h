// Expression expansion (Lemma 1.4.1) and surrogate queries (Theorem 1.4.2).
#ifndef VIEWCAP_ALGEBRA_EXPAND_H_
#define VIEWCAP_ALGEBRA_EXPAND_H_

#include <unordered_map>

#include "algebra/expr.h"

namespace viewcap {

/// Maps relation names to defining expressions; the {(E_i, eta_i)} pairs of
/// a view presented as eta_i -> E_i.
using Definitions = std::unordered_map<RelId, ExprPtr>;

/// Lemma 1.4.1: replaces every occurrence of a name eta_i in `expr` by
/// defs.at(eta_i). Names absent from `defs` are left untouched (they are
/// base relations). Fails with IllFormed when a definition's TRS does not
/// match the name's type, since the substituted formula would not be an
/// m.r. expression.
Result<ExprPtr> Expand(const Catalog& catalog, const ExprPtr& expr,
                       const Definitions& defs);

}  // namespace viewcap

#endif  // VIEWCAP_ALGEBRA_EXPAND_H_
