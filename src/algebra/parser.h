// A small concrete syntax for schemas, expressions and views.
//
//   program   := item*
//   item      := schema | view
//   schema    := "schema" "{" rel_decl* "}"
//   rel_decl  := IDENT "(" IDENT ("," IDENT)* ")" ";"
//   view      := "view" IDENT "{" def* "}"
//   def       := IDENT ":=" expr ";"
//   expr      := term ("*" term)*                 -- '*' is natural join
//   term      := "pi" "{" IDENT ("," IDENT)* "}" "(" expr ")"
//              | "(" expr ")"
//              | IDENT
//
// Example:
//   schema { r(A, B, C); }
//   view V { v := pi{A, B}(r) * pi{B, C}(r); }
#ifndef VIEWCAP_ALGEBRA_PARSER_H_
#define VIEWCAP_ALGEBRA_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "algebra/expr.h"

namespace viewcap {

/// One `name := expr` pair of a parsed view. The view relation name is
/// interned in the catalog with type TRS(expr) during parsing.
struct ParsedDefinition {
  RelId view_rel = kInvalidRel;
  ExprPtr query;
};

/// A parsed `view` block.
struct ParsedView {
  std::string name;
  std::vector<ParsedDefinition> definitions;
};

/// Everything a program declared.
struct ParsedProgram {
  /// Base relations declared in `schema` blocks, in declaration order.
  std::vector<RelId> base_relations;
  std::vector<ParsedView> views;
};

/// Parses a standalone expression over relations already in `catalog`.
/// Diagnostics carry 1-based line/column positions.
Result<ExprPtr> ParseExpr(Catalog& catalog, std::string_view text);

/// Parses a full program, interning declared relations and view names into
/// `catalog`.
Result<ParsedProgram> ParseProgram(Catalog& catalog, std::string_view text);

}  // namespace viewcap

#endif  // VIEWCAP_ALGEBRA_PARSER_H_
