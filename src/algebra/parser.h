// A small concrete syntax for schemas, expressions and views.
//
//   program   := item*
//   item      := schema | view
//   schema    := "schema" "{" rel_decl* "}"
//   rel_decl  := IDENT "(" IDENT ("," IDENT)* ")" ";"
//   view      := "view" IDENT "{" def* "}"
//   def       := IDENT ":=" expr ";"
//   expr      := term ("*" term)*                 -- '*' is natural join
//   term      := "pi" "{" IDENT ("," IDENT)* "}" "(" expr ")"
//              | "(" expr ")"
//              | IDENT
//
// Example:
//   schema { r(A, B, C); }
//   view V { v := pi{A, B}(r); }
//
// Parsing is two-layered: algebra/ast.h produces the span-carrying raw
// syntax tree, and this header's functions lower it against a Catalog into
// typed expressions. Strict callers (the analyzer, the CLI commands) use
// these; the linter (src/lint) walks the raw AST instead so it can keep
// going after the first defect.
#ifndef VIEWCAP_ALGEBRA_PARSER_H_
#define VIEWCAP_ALGEBRA_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "algebra/ast.h"
#include "algebra/expr.h"

namespace viewcap {

/// One `name := expr` pair of a parsed view. The view relation name is
/// interned in the catalog with type TRS(expr) during parsing.
struct ParsedDefinition {
  RelId view_rel = kInvalidRel;
  ExprPtr query;
  /// The definition's name as written, with the span of its occurrence on
  /// the left-hand side (for diagnostics).
  std::string name;
  SourceSpan name_span;
};

/// A parsed `view` block.
struct ParsedView {
  std::string name;
  SourceSpan name_span;
  std::vector<ParsedDefinition> definitions;
};

/// Everything a program declared.
struct ParsedProgram {
  /// Base relations declared in `schema` blocks, in declaration order.
  std::vector<RelId> base_relations;
  std::vector<ParsedView> views;
};

/// Parses a standalone expression over relations already in `catalog`.
/// Diagnostics carry 1-based line:column positions.
Result<ExprPtr> ParseExpr(Catalog& catalog, std::string_view text);

/// Parses a full program, interning declared relations and view names into
/// `catalog`.
Result<ParsedProgram> ParseProgram(Catalog& catalog, std::string_view text);

/// Lowers an already-parsed raw expression against `catalog`: resolves
/// relation names, interns attributes and applies the Section 1.2 typing
/// rules. Errors carry the offending node's source location.
Result<ExprPtr> LowerExpr(Catalog& catalog, const AstExpr& expr);

/// Lowers a raw program item-by-item (schema relations and view relation
/// names are interned as encountered, so later items see earlier ones).
Result<ParsedProgram> LowerProgram(Catalog& catalog,
                                   const AstProgram& program);

}  // namespace viewcap

#endif  // VIEWCAP_ALGEBRA_PARSER_H_
