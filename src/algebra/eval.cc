#include "algebra/eval.h"

#include "base/check.h"

namespace viewcap {

Relation Evaluate(const Expr& expr, const Instantiation& alpha) {
  switch (expr.kind()) {
    case Expr::Kind::kRelName:
      return alpha.Get(expr.rel());
    case Expr::Kind::kProject:
      return Evaluate(*expr.children()[0], alpha).Project(expr.projection());
    case Expr::Kind::kJoin: {
      std::vector<Relation> parts;
      parts.reserve(expr.children().size());
      for (const ExprPtr& c : expr.children()) {
        parts.push_back(Evaluate(*c, alpha));
      }
      return Relation::NaturalJoinAll(parts);
    }
  }
  VIEWCAP_CHECK(false);
  return Relation();
}

}  // namespace viewcap
