#include "algebra/enumerator.h"

#include "base/check.h"

namespace viewcap {

ExprEnumerator::ExprEnumerator(const Catalog* catalog,
                               std::vector<RelId> names)
    : catalog_(catalog), names_(std::move(names)) {
  for (RelId r : names_) VIEWCAP_CHECK(catalog_->HasRelation(r));
}

ExprEnumerator::Stats ExprEnumerator::Enumerate(std::size_t max_leaves,
                                                std::size_t max_candidates,
                                                const Visitor& visit) const {
  Stats stats;
  if (max_leaves == 0) return stats;
  // kept[s] holds the building blocks with exactly s leaves (index 0
  // unused).
  std::vector<std::vector<ExprPtr>> kept(max_leaves + 1);

  // Offers `candidate` itself plus every nontrivial projection of it.
  // Returns false when the enumeration must stop.
  auto offer = [&](const ExprPtr& candidate, std::size_t leaves) -> bool {
    std::vector<ExprPtr> forms{candidate};
    for (const AttrSet& x : candidate->trs().NonemptyProperSubsets()) {
      forms.push_back(Expr::MustProject(x, candidate));
    }
    for (ExprPtr& form : forms) {
      if (stats.generated >= max_candidates) {
        stats.exhausted_budget = true;
        return false;
      }
      ++stats.generated;
      switch (visit(form)) {
        case Verdict::kKeep:
          ++stats.kept;
          kept[leaves].push_back(std::move(form));
          break;
        case Verdict::kSkip:
          break;
        case Verdict::kStop:
          stats.stopped = true;
          return false;
      }
    }
    return true;
  };

  // Level 1: the relation names themselves.
  for (RelId rel : names_) {
    if (!offer(Expr::Rel(*catalog_, rel), 1)) return stats;
  }

  // Level s >= 2: binary joins of kept building blocks.
  for (std::size_t s = 2; s <= max_leaves; ++s) {
    for (std::size_t a = 1; a * 2 <= s; ++a) {
      const std::size_t b = s - a;
      for (std::size_t i = 0; i < kept[a].size(); ++i) {
        // When both operands come from the same level, joins are
        // commutative: only emit unordered pairs.
        const std::size_t j_begin = (a == b) ? i : 0;
        for (std::size_t j = j_begin; j < kept[b].size(); ++j) {
          ExprPtr join = Expr::MustJoin2(kept[a][i], kept[b][j]);
          if (!offer(join, s)) return stats;
        }
      }
    }
  }
  return stats;
}

bool ExprEnumerator::GenerateLevel(
    std::size_t s, const std::vector<std::vector<ExprPtr>>& kept,
    std::size_t cap, std::vector<ExprPtr>* out) const {
  bool truncated = false;
  // Emits `candidate` itself plus every nontrivial projection of it, in
  // the same order as the serial offer(); returns false on truncation.
  auto emit = [&](const ExprPtr& candidate) -> bool {
    if (out->size() >= cap) {
      truncated = true;
      return false;
    }
    out->push_back(candidate);
    for (const AttrSet& x : candidate->trs().NonemptyProperSubsets()) {
      if (out->size() >= cap) {
        truncated = true;
        return false;
      }
      out->push_back(Expr::MustProject(x, candidate));
    }
    return true;
  };

  if (s == 1) {
    for (RelId rel : names_) {
      if (!emit(Expr::Rel(*catalog_, rel))) return truncated;
    }
    return truncated;
  }
  for (std::size_t a = 1; a * 2 <= s; ++a) {
    const std::size_t b = s - a;
    for (std::size_t i = 0; i < kept[a].size(); ++i) {
      // When both operands come from the same level, joins are
      // commutative: only emit unordered pairs.
      const std::size_t j_begin = (a == b) ? i : 0;
      for (std::size_t j = j_begin; j < kept[b].size(); ++j) {
        if (!emit(Expr::MustJoin2(kept[a][i], kept[b][j]))) {
          return truncated;
        }
      }
    }
  }
  return truncated;
}

}  // namespace viewcap
