#include "algebra/ast.h"

#include <cctype>
#include <utility>

#include "base/strings.h"

namespace viewcap {

namespace {

enum class TokKind {
  kIdent,
  kLBrace,
  kRBrace,
  kLParen,
  kRParen,
  kComma,
  kSemicolon,
  kStar,
  kAssign,  // :=
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  SourceSpan span;
};

SourceSpan SpanFrom(int line, int column, std::size_t length) {
  return SourceSpan{{line, column},
                    {line, column + static_cast<int>(length)}};
}

/// Joins two spans into the smallest span covering both.
SourceSpan Cover(const SourceSpan& a, const SourceSpan& b) {
  SourceSpan out;
  out.begin = a.begin < b.begin ? a.begin : b.begin;
  out.end = a.end < b.end ? b.end : a.end;
  return out;
}

/// The lexer never fails hard: an unexpected character is recorded and
/// skipped, so one stray byte does not hide every later diagnostic.
class Lexer {
 public:
  Lexer(std::string_view text, std::vector<SyntaxError>& errors)
      : text_(text), errors_(errors) {}

  std::vector<Token> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipWhitespaceAndComments();
      if (pos_ >= text_.size()) break;
      const int line = line_;
      const int column = column_;
      char c = text_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string ident;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_')) {
          ident += text_[pos_];
          Advance();
        }
        SourceSpan span = SpanFrom(line, column, ident.size());
        out.push_back({TokKind::kIdent, std::move(ident), span});
        continue;
      }
      if (c == ':' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
        Advance();
        Advance();
        out.push_back({TokKind::kAssign, ":=", SpanFrom(line, column, 2)});
        continue;
      }
      TokKind kind;
      switch (c) {
        case '{': kind = TokKind::kLBrace; break;
        case '}': kind = TokKind::kRBrace; break;
        case '(': kind = TokKind::kLParen; break;
        case ')': kind = TokKind::kRParen; break;
        case ',': kind = TokKind::kComma; break;
        case ';': kind = TokKind::kSemicolon; break;
        case '*': kind = TokKind::kStar; break;
        default:
          errors_.push_back(
              {SpanFrom(line, column, 1),
               StrCat("unexpected character '", c, "'")});
          Advance();
          continue;
      }
      Advance();
      out.push_back({kind, std::string(1, c), SpanFrom(line, column, 1)});
    }
    out.push_back({TokKind::kEnd, "", SpanFrom(line_, column_, 0)});
    return out;
  }

 private:
  void Advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '#' ||
                 ((c == '/' || c == '-') && pos_ + 1 < text_.size() &&
                  text_[pos_ + 1] == c)) {
        // `#`, `//` and `--` all introduce comments to end of line; the
        // linter additionally reads `vcl-ignore(...)` directives out of
        // them (lint/linter.h).
        while (pos_ < text_.size() && text_[pos_] != '\n') Advance();
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  std::vector<SyntaxError>& errors_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

class AstParser {
 public:
  AstParser(std::vector<Token> tokens, std::vector<SyntaxError>& errors)
      : tokens_(std::move(tokens)), errors_(errors) {}

  AstProgram ParseProgram() {
    AstProgram program;
    while (Peek().kind != TokKind::kEnd) {
      if (Peek().kind == TokKind::kIdent && Peek().text == "schema") {
        program.items.push_back(ParseSchemaBlock());
      } else if (Peek().kind == TokKind::kIdent && Peek().text == "view") {
        program.items.push_back(ParseViewBlock());
      } else {
        if (Peek().kind == TokKind::kIdent) {
          Error(StrCat("expected 'schema' or 'view', found '", Peek().text,
                       "'"));
        } else {
          Error("expected 'schema' or 'view'");
        }
        SyncToTopLevel();
      }
    }
    return program;
  }

  AstExprPtr ParseExprOnly() {
    AstExprPtr expr = ParseJoin();
    if (expr != nullptr && Peek().kind != TokKind::kEnd) {
      Error("expected end of input");
      return nullptr;
    }
    return expr;
  }

 private:
  const Token& Peek() const { return tokens_[index_]; }
  Token Take() { return tokens_[index_++]; }
  bool AtEnd() const { return Peek().kind == TokKind::kEnd; }

  void Error(std::string what) {
    errors_.push_back({Peek().span, std::move(what)});
  }

  bool Expect(TokKind kind, std::string_view what) {
    if (Peek().kind != kind) {
      Error(StrCat("expected ", what));
      return false;
    }
    Take();
    return true;
  }

  /// Skips to the next top-level 'schema' / 'view' keyword.
  void SyncToTopLevel() {
    while (!AtEnd()) {
      if (Peek().kind == TokKind::kIdent &&
          (Peek().text == "schema" || Peek().text == "view")) {
        return;
      }
      Take();
    }
  }

  /// Skips past the next ';' (consumed) or stops before '}' / EOF, so one
  /// bad statement does not take the rest of its block with it.
  void SyncToStatementEnd() {
    while (!AtEnd() && Peek().kind != TokKind::kRBrace) {
      if (Take().kind == TokKind::kSemicolon) return;
    }
  }

  /// attr_list := IDENT ("," IDENT)* | <empty>. Emptiness and duplicates
  /// are surface-legal here; the typed layer and the linter judge them.
  std::vector<AstAttr> ParseAttrList(TokKind closer) {
    std::vector<AstAttr> attrs;
    if (Peek().kind == closer) return attrs;
    while (true) {
      if (Peek().kind != TokKind::kIdent) {
        Error("expected attribute name");
        return attrs;
      }
      Token t = Take();
      attrs.push_back(AstAttr{std::move(t.text), t.span});
      if (Peek().kind != TokKind::kComma) break;
      Take();
    }
    return attrs;
  }

  AstItem ParseSchemaBlock() {
    AstItem item;
    item.kind = AstItem::Kind::kSchema;
    Take();  // 'schema'
    if (!Expect(TokKind::kLBrace, "'{'")) {
      SyncToTopLevel();
      return item;
    }
    while (!AtEnd() && Peek().kind != TokKind::kRBrace) {
      if (Peek().kind != TokKind::kIdent) {
        Error("expected relation name");
        SyncToStatementEnd();
        continue;
      }
      Token name = Take();
      AstRelationDecl decl;
      decl.name = std::move(name.text);
      decl.name_span = name.span;
      if (!Expect(TokKind::kLParen, "'('")) {
        SyncToStatementEnd();
        continue;
      }
      decl.attributes = ParseAttrList(TokKind::kRParen);
      if (!Expect(TokKind::kRParen, "')'") ||
          !Expect(TokKind::kSemicolon, "';'")) {
        SyncToStatementEnd();
        continue;
      }
      item.relations.push_back(std::move(decl));
    }
    Expect(TokKind::kRBrace, "'}'");
    return item;
  }

  AstItem ParseViewBlock() {
    AstItem item;
    item.kind = AstItem::Kind::kView;
    Token keyword = Take();  // 'view'
    item.view.span = keyword.span;
    if (Peek().kind != TokKind::kIdent) {
      Error("expected view name");
      SyncToTopLevel();
      return item;
    }
    Token name = Take();
    item.view.name = std::move(name.text);
    item.view.name_span = name.span;
    item.view.span = Cover(item.view.span, name.span);
    if (!Expect(TokKind::kLBrace, "'{'")) {
      SyncToTopLevel();
      return item;
    }
    while (!AtEnd() && Peek().kind != TokKind::kRBrace) {
      if (Peek().kind != TokKind::kIdent) {
        Error("expected view relation name");
        SyncToStatementEnd();
        continue;
      }
      Token def_name = Take();
      AstDefinition def;
      def.name = std::move(def_name.text);
      def.name_span = def_name.span;
      def.span = def_name.span;
      if (!Expect(TokKind::kAssign, "':='")) {
        SyncToStatementEnd();
        continue;
      }
      def.query = ParseJoin();
      if (def.query == nullptr) {
        SyncToStatementEnd();
        continue;
      }
      const Token& semicolon = Peek();
      if (!Expect(TokKind::kSemicolon, "';'")) {
        SyncToStatementEnd();
        continue;
      }
      def.span = Cover(def_name.span, semicolon.span);
      item.view.span = Cover(item.view.span, def.span);
      item.view.definitions.push_back(std::move(def));
    }
    const Token& rbrace = Peek();
    if (rbrace.kind == TokKind::kRBrace) {
      item.view.span = Cover(item.view.span, rbrace.span);
    }
    Expect(TokKind::kRBrace, "'}'");
    return item;
  }

  // expr := term ("*" term)*
  AstExprPtr ParseJoin() {
    AstExprPtr first = ParseTerm();
    if (first == nullptr) return nullptr;
    std::vector<AstExprPtr> operands;
    operands.push_back(std::move(first));
    while (Peek().kind == TokKind::kStar) {
      Take();
      AstExprPtr next = ParseTerm();
      if (next == nullptr) return nullptr;
      operands.push_back(std::move(next));
    }
    if (operands.size() == 1) return std::move(operands[0]);
    auto join = std::make_unique<AstExpr>();
    join->kind = AstExpr::Kind::kJoin;
    join->span = operands.front()->span;
    for (const AstExprPtr& op : operands) {
      join->span = Cover(join->span, op->span);
    }
    join->children = std::move(operands);
    return join;
  }

  // term := pi{..}(expr) | (expr) | IDENT
  AstExprPtr ParseTerm() {
    if (Peek().kind == TokKind::kLParen) {
      Take();
      AstExprPtr inner = ParseJoin();
      if (inner == nullptr) return nullptr;
      if (!Expect(TokKind::kRParen, "')'")) return nullptr;
      return inner;
    }
    if (Peek().kind != TokKind::kIdent) {
      Error("expected expression");
      return nullptr;
    }
    if (Peek().text == "pi") {
      Token pi = Take();
      auto project = std::make_unique<AstExpr>();
      project->kind = AstExpr::Kind::kProject;
      project->span = pi.span;
      if (!Expect(TokKind::kLBrace, "'{'")) return nullptr;
      project->projection = ParseAttrList(TokKind::kRBrace);
      if (!Expect(TokKind::kRBrace, "'}'")) return nullptr;
      if (!Expect(TokKind::kLParen, "'('")) return nullptr;
      AstExprPtr inner = ParseJoin();
      if (inner == nullptr) return nullptr;
      const Token& rparen = Peek();
      if (!Expect(TokKind::kRParen, "')'")) return nullptr;
      project->span = Cover(project->span, rparen.span);
      project->children.push_back(std::move(inner));
      return project;
    }
    Token ident = Take();
    auto rel = std::make_unique<AstExpr>();
    rel->kind = AstExpr::Kind::kRel;
    rel->span = ident.span;
    rel->rel = std::move(ident.text);
    return rel;
  }

  std::vector<Token> tokens_;
  std::vector<SyntaxError>& errors_;
  std::size_t index_ = 0;
};

}  // namespace

AstProgram ParseProgramAst(std::string_view text,
                           std::vector<SyntaxError>& errors) {
  Lexer lexer(text, errors);
  AstParser parser(lexer.Tokenize(), errors);
  return parser.ParseProgram();
}

AstExprPtr ParseExprAst(std::string_view text,
                        std::vector<SyntaxError>& errors) {
  Lexer lexer(text, errors);
  AstParser parser(lexer.Tokenize(), errors);
  return parser.ParseExprOnly();
}

}  // namespace viewcap
