#include "algebra/printer.h"

#include "base/check.h"
#include "base/strings.h"

namespace viewcap {

std::string ToString(const AttrSet& attrs, const Catalog& catalog) {
  std::vector<std::string> names;
  names.reserve(attrs.size());
  for (AttrId a : attrs) names.push_back(catalog.AttributeName(a));
  return StrCat("{", StrJoin(names, ", "), "}");
}

namespace {

void Render(const Expr& expr, const Catalog& catalog, bool parenthesize_join,
            std::string& out) {
  switch (expr.kind()) {
    case Expr::Kind::kRelName:
      out += catalog.RelationName(expr.rel());
      return;
    case Expr::Kind::kProject:
      out += "pi";
      out += ToString(expr.projection(), catalog);
      out += "(";
      Render(*expr.children()[0], catalog, /*parenthesize_join=*/false, out);
      out += ")";
      return;
    case Expr::Kind::kJoin: {
      if (parenthesize_join) out += "(";
      for (std::size_t i = 0; i < expr.children().size(); ++i) {
        if (i > 0) out += " * ";
        // Nested joins need parentheses to preserve the tree shape on
        // re-parse (the mapping is associative but the template build is
        // shape-sensitive only in fresh-symbol naming).
        Render(*expr.children()[i], catalog, /*parenthesize_join=*/true, out);
      }
      if (parenthesize_join) out += ")";
      return;
    }
  }
  VIEWCAP_CHECK(false);
}

}  // namespace

std::string ToString(const Expr& expr, const Catalog& catalog) {
  std::string out;
  Render(expr, catalog, /*parenthesize_join=*/false, out);
  return out;
}

std::string ToString(const ExprPtr& expr, const Catalog& catalog) {
  VIEWCAP_CHECK(expr != nullptr);
  return ToString(*expr, catalog);
}

}  // namespace viewcap
