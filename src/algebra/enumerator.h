// Systematic enumeration of PJ expressions over a fixed set of relation
// names, by leaf budget. This is the engine behind the decision procedures
// of Section 2.4: it explores the same space as the J_k template
// enumeration of Lemma 2.4.9, organized by expressions (every expression
// template arises from Algorithm 2.1.1, and an expression with m leaf
// occurrences yields a template with at most m rows).
#ifndef VIEWCAP_ALGEBRA_ENUMERATOR_H_
#define VIEWCAP_ALGEBRA_ENUMERATOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "algebra/expr.h"
#include "base/thread_pool.h"

namespace viewcap {

/// Budgets for the bounded enumerations implementing the paper's decision
/// procedures (Lemma 2.4.10 and its users). The leaf budget defaults to
/// the reduced row count of the query under test — the bound Lemma 2.4.8
/// establishes for the needed construction — plus `extra_leaves` slack;
/// see DESIGN.md for the completeness discussion.
struct SearchLimits {
  /// Extra leaves beyond the Lemma 2.4.8 row bound.
  std::size_t extra_leaves = 0;
  /// Hard cap on the leaf budget regardless of the query's size.
  std::size_t max_leaves = 10;
  /// Cap on candidate expressions examined before giving up.
  std::size_t max_candidates = 200000;
  /// Worker threads for the closure searches. 1 (the default) is the
  /// exact legacy serial behavior; 0 means hardware_concurrency; any
  /// other value is the total thread count including the calling thread.
  /// Verdicts, witnesses and search statistics are identical for every
  /// value (see ExprEnumerator::EnumerateSharded), so the knob is not part
  /// of the engine's verdict-cache key.
  std::size_t threads = 1;
};

/// Enumerates expressions in normalized form: a leaf, or a binary join of
/// previously-kept candidates, each optionally wrapped in one projection
/// (consecutive projections compose, so one per node is complete).
/// Associativity/commutativity duplicates are expected; the caller's visit
/// callback is responsible for semantic deduplication and decides which
/// candidates become building blocks for larger expressions.
class ExprEnumerator {
 public:
  enum class Verdict {
    kKeep,  ///< Record as a building block for larger candidates.
    kSkip,  ///< Drop (duplicate or uninteresting), keep enumerating.
    kStop,  ///< Abort the whole enumeration.
  };

  struct Stats {
    std::size_t generated = 0;  ///< Candidates passed to the callback.
    std::size_t kept = 0;       ///< Candidates the callback kept.
    bool stopped = false;       ///< Callback requested kStop.
    bool exhausted_budget = false;  ///< Hit max_candidates.
  };

  using Visitor = std::function<Verdict(const ExprPtr&)>;

  /// `names` are the permitted leaf relation names (typically a view
  /// schema). The catalog must outlive the enumerator.
  ExprEnumerator(const Catalog* catalog, std::vector<RelId> names);

  /// Visits candidates in nondecreasing leaf count up to `max_leaves`,
  /// stopping early after `max_candidates` callback invocations.
  Stats Enumerate(std::size_t max_leaves, std::size_t max_candidates,
                  const Visitor& visit) const;

  /// The sharded (parallel) enumeration driver behind the Lemma 2.4.10
  /// closure searches. Key fact making this possible: the candidate
  /// stream at leaf level s depends only on the kKeep verdicts at levels
  /// strictly below s (level-s joins combine kept blocks of a + b = s
  /// leaves with a, b >= 1), so enumeration proceeds in level waves:
  ///
  ///   1. generate the level's candidates — a deterministic list;
  ///   2. evaluate them on up to `threads` workers (`evaluate`, which
  ///      must be thread-safe and must not touch enumeration state),
  ///      sharded dynamically by candidate index; a candidate whose
  ///      evaluation `is_stop` (witness or failure) ratchets the shared
  ///      cancellation bound down to its index, and workers skip every
  ///      candidate above the bound — but never one below it, so the
  ///      SMALLEST stop index is always found exactly;
  ///   3. commit the results in enumeration-index order on the calling
  ///      thread (`commit` — the only place allowed to touch dedup
  ///      registries and kept blocks), stopping at the first kStop.
  ///
  /// The committed verdict sequence — and with it Stats — is identical to
  /// Enumerate() running evaluate+commit fused, for every thread count:
  /// `generated` counts committed candidates (the serial callback-
  /// invocation count; speculative evaluations beyond a stop index are
  /// not observable), `exhausted_budget` is set only when the enumeration
  /// truncated the stream at max_candidates AND no earlier commit
  /// stopped it — a cancelled (witness-found) search never reports an
  /// exhausted budget.
  ///
  /// `commit` may return kStop for a candidate `is_stop` was false for
  /// (and vice versa — e.g. a failure that dedup would have skipped);
  /// cancellation is only a work-saving hint. If the commit walk passes
  /// the cancellation bound, the remaining (skipped) candidates are
  /// evaluated lazily on the calling thread.
  template <typename EvalResult>
  struct ShardedVisitor {
    /// Worker-side per-candidate evaluation (thread-safe, order-free).
    /// Always required: the commit walk falls back to it for candidates
    /// the cancellation bound skipped.
    std::function<EvalResult(const ExprPtr&)> evaluate;
    /// Optional bulk evaluation. When set, workers are handed contiguous
    /// chunks [begin, end) of the level's candidate list and must return
    /// one result per candidate, identical to calling `evaluate` on each
    /// — the wave form exists so an implementation can batch the chunk's
    /// kernel work (e.g. Engine::RowEmbedsBatch against one shared
    /// target). Chunks are handed out in increasing index order and a
    /// chunk is skipped only when its first index is beyond the stop
    /// bound, so the smallest stop index is still found exactly.
    std::function<std::vector<EvalResult>(const std::vector<ExprPtr>& level,
                                          std::size_t begin,
                                          std::size_t end)>
        evaluate_wave;
    /// Worker-side cancellation predicate over an evaluation (cheap).
    std::function<bool(const EvalResult&)> is_stop;
    /// Serial, enumeration-index-order verdict (sole state mutator).
    std::function<Verdict(const ExprPtr&, const EvalResult&)> commit;
  };

  /// Candidates per worker chunk when a visitor supplies evaluate_wave.
  /// Small enough to keep the cancellation bound responsive, large enough
  /// to amortize per-wave setup.
  static constexpr std::size_t kWaveChunk = 8;

  template <typename EvalResult>
  Stats EnumerateSharded(std::size_t max_leaves, std::size_t max_candidates,
                         std::size_t threads, ThreadPool* pool,
                         const ShardedVisitor<EvalResult>& visitor) const {
    Stats stats;
    if (max_leaves == 0) return stats;
    std::vector<std::vector<ExprPtr>> kept(max_leaves + 1);
    for (std::size_t s = 1; s <= max_leaves; ++s) {
      const std::size_t remaining = max_candidates - stats.generated;
      std::vector<ExprPtr> level;
      const bool truncated = GenerateLevel(s, kept, remaining, &level);
      if (truncated) stats.exhausted_budget = true;

      // Evaluate the wave. Chunks (single candidates without
      // evaluate_wave) are handed out in increasing order, so every index
      // at or below the final stop bound is evaluated before the workers
      // drain; rounds past a settled stop bound are skipped (left empty).
      std::vector<std::optional<EvalResult>> evals(level.size());
      std::atomic<std::size_t> stop_bound{
          std::numeric_limits<std::size_t>::max()};
      const auto ratchet = [&stop_bound](std::size_t i) {
        // Ratchet down to the smallest stop index seen.
        std::size_t bound = stop_bound.load(std::memory_order_acquire);
        while (i < bound && !stop_bound.compare_exchange_weak(
                                bound, i, std::memory_order_acq_rel)) {
        }
      };
      const bool waved = static_cast<bool>(visitor.evaluate_wave);
      const std::size_t chunk = waved ? kWaveChunk : 1;
      const std::size_t chunks = (level.size() + chunk - 1) / chunk;
      const auto run_chunk = [&](std::size_t c) {
        const std::size_t begin = c * chunk;
        const std::size_t end = std::min(level.size(), begin + chunk);
        if (waved) {
          std::vector<EvalResult> results =
              visitor.evaluate_wave(level, begin, end);
          for (std::size_t i = begin; i < end; ++i) {
            EvalResult& eval = results[i - begin];
            if (visitor.is_stop(eval)) ratchet(i);
            evals[i] = std::move(eval);
          }
        } else {
          EvalResult eval = visitor.evaluate(level[begin]);
          if (visitor.is_stop(eval)) ratchet(begin);
          evals[begin] = std::move(eval);
        }
      };
      // Chunks are dispatched in fixed rounds of `threads` with a barrier
      // between rounds, and the cancellation bound is consulted only at
      // round boundaries (where every prior chunk has quiesced). The set
      // of evaluated candidates is therefore a pure function of the level
      // and the smallest stop index — never of thread timing — which is
      // what keeps engine cache counters identical across runs at a given
      // thread count (the SoA/legacy differential suite asserts this).
      // Rounds of one chunk at threads <= 1 reproduce the serial
      // check-before-every-chunk behavior exactly.
      const std::size_t round = threads > 1 ? threads : 1;
      for (std::size_t first = 0; first < chunks; first += round) {
        if (first * chunk > stop_bound.load(std::memory_order_acquire)) {
          break;
        }
        const std::size_t last = std::min(chunks, first + round);
        ParallelFor(pool, threads, last - first,
                    [&](std::size_t k) { run_chunk(first + k); });
      }

      // Commit in enumeration order; this is the serial replay that makes
      // every thread count observationally identical.
      for (std::size_t i = 0; i < level.size(); ++i) {
        if (!evals[i].has_value()) {
          // Beyond a stop bound the commit walk out-voted (e.g. the stop
          // candidate was a duplicate): fall back to lazy evaluation.
          evals[i] = visitor.evaluate(level[i]);
        }
        ++stats.generated;
        switch (visitor.commit(level[i], *evals[i])) {
          case Verdict::kKeep:
            ++stats.kept;
            kept[s].push_back(level[i]);
            break;
          case Verdict::kSkip:
            break;
          case Verdict::kStop:
            stats.stopped = true;
            stats.exhausted_budget = false;
            return stats;
        }
      }
      if (truncated) return stats;
    }
    return stats;
  }

 private:
  /// Appends level-`s` candidates to *out in exact enumeration order
  /// (each base candidate followed by its nontrivial projections): level
  /// 1 is the relation names; level s >= 2 is binary joins of kept
  /// blocks with a + b = s leaves. Generates at most `cap` candidates;
  /// returns true when the level was truncated by the cap (i.e. at least
  /// one more candidate existed).
  bool GenerateLevel(std::size_t s,
                     const std::vector<std::vector<ExprPtr>>& kept,
                     std::size_t cap, std::vector<ExprPtr>* out) const;

  const Catalog* catalog_;
  std::vector<RelId> names_;
};

}  // namespace viewcap

#endif  // VIEWCAP_ALGEBRA_ENUMERATOR_H_
