// Systematic enumeration of PJ expressions over a fixed set of relation
// names, by leaf budget. This is the engine behind the decision procedures
// of Section 2.4: it explores the same space as the J_k template
// enumeration of Lemma 2.4.9, organized by expressions (every expression
// template arises from Algorithm 2.1.1, and an expression with m leaf
// occurrences yields a template with at most m rows).
#ifndef VIEWCAP_ALGEBRA_ENUMERATOR_H_
#define VIEWCAP_ALGEBRA_ENUMERATOR_H_

#include <functional>
#include <vector>

#include "algebra/expr.h"

namespace viewcap {

/// Budgets for the bounded enumerations implementing the paper's decision
/// procedures (Lemma 2.4.10 and its users). The leaf budget defaults to
/// the reduced row count of the query under test — the bound Lemma 2.4.8
/// establishes for the needed construction — plus `extra_leaves` slack;
/// see DESIGN.md for the completeness discussion.
struct SearchLimits {
  /// Extra leaves beyond the Lemma 2.4.8 row bound.
  std::size_t extra_leaves = 0;
  /// Hard cap on the leaf budget regardless of the query's size.
  std::size_t max_leaves = 10;
  /// Cap on candidate expressions examined before giving up.
  std::size_t max_candidates = 200000;
};

/// Enumerates expressions in normalized form: a leaf, or a binary join of
/// previously-kept candidates, each optionally wrapped in one projection
/// (consecutive projections compose, so one per node is complete).
/// Associativity/commutativity duplicates are expected; the caller's visit
/// callback is responsible for semantic deduplication and decides which
/// candidates become building blocks for larger expressions.
class ExprEnumerator {
 public:
  enum class Verdict {
    kKeep,  ///< Record as a building block for larger candidates.
    kSkip,  ///< Drop (duplicate or uninteresting), keep enumerating.
    kStop,  ///< Abort the whole enumeration.
  };

  struct Stats {
    std::size_t generated = 0;  ///< Candidates passed to the callback.
    std::size_t kept = 0;       ///< Candidates the callback kept.
    bool stopped = false;       ///< Callback requested kStop.
    bool exhausted_budget = false;  ///< Hit max_candidates.
  };

  using Visitor = std::function<Verdict(const ExprPtr&)>;

  /// `names` are the permitted leaf relation names (typically a view
  /// schema). The catalog must outlive the enumerator.
  ExprEnumerator(const Catalog* catalog, std::vector<RelId> names);

  /// Visits candidates in nondecreasing leaf count up to `max_leaves`,
  /// stopping early after `max_candidates` callback invocations.
  Stats Enumerate(std::size_t max_leaves, std::size_t max_candidates,
                  const Visitor& visit) const;

 private:
  const Catalog* catalog_;
  std::vector<RelId> names_;
};

}  // namespace viewcap

#endif  // VIEWCAP_ALGEBRA_ENUMERATOR_H_
