// The raw syntax tree of the .vcp program language, with source spans.
//
// Parsing is split in two layers:
//   1. this file: text -> AST. Pure surface syntax, no catalog, no typing.
//      The parser is *lenient*: it records syntax errors and recovers (to
//      the next ';' or block boundary), so downstream analyses can report
//      many problems in one run.
//   2. algebra/parser.h: AST -> typed Expr / ParsedProgram against a
//      Catalog. Strict: the first problem aborts with a located Status.
//
// The linter (src/lint) consumes the AST directly: it needs the raw
// projection lists (duplicates, emptiness), unresolved names and spans that
// the typed layer normalizes away.
#ifndef VIEWCAP_ALGEBRA_AST_H_
#define VIEWCAP_ALGEBRA_AST_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/source.h"

namespace viewcap {

/// One attribute occurrence in a projection list or relation declaration.
struct AstAttr {
  std::string name;
  SourceSpan span;
};

struct AstExpr;
using AstExprPtr = std::unique_ptr<AstExpr>;

/// A raw expression node. Unlike algebra/expr.h this is untyped: names are
/// uninterned strings and projection lists keep their written order,
/// duplicates included.
struct AstExpr {
  enum class Kind {
    kRel,      ///< A relation name occurrence.
    kProject,  ///< pi{...}(child); `projection` may be empty or contain
               ///< duplicates — the linter flags both.
    kJoin,     ///< child_1 * ... * child_n (n >= 2).
  };

  Kind kind = Kind::kRel;
  /// Extent of this node, from its first to one past its last token.
  SourceSpan span;
  /// kRel: the referenced name.
  std::string rel;
  /// kProject: the written projection list.
  std::vector<AstAttr> projection;
  /// kProject: exactly one; kJoin: at least two.
  std::vector<AstExprPtr> children;
};

/// One `name(attrs);` declaration of a schema block.
struct AstRelationDecl {
  std::string name;
  SourceSpan name_span;
  std::vector<AstAttr> attributes;
};

/// One `name := expr;` definition of a view block. `query` is null when
/// recovery dropped an unparseable right-hand side.
struct AstDefinition {
  std::string name;
  SourceSpan name_span;
  /// The whole statement, from the name through the closing ';'. Fix-its
  /// that drop a definition (VCL101, lint/fixits.h) delete this span.
  SourceSpan span;
  AstExprPtr query;
};

/// A `view` block.
struct AstView {
  std::string name;
  SourceSpan name_span;
  /// The whole block, from the `view` keyword through the closing '}'.
  /// Fix-its that drop a subsumed view (VCL201) delete this span.
  SourceSpan span;
  std::vector<AstDefinition> definitions;
};

/// A top-level item, in declaration order (views may only reference
/// relations declared in *earlier* items).
struct AstItem {
  enum class Kind { kSchema, kView };
  Kind kind = Kind::kSchema;
  std::vector<AstRelationDecl> relations;  ///< kSchema.
  AstView view;                            ///< kView.
};

struct AstProgram {
  std::vector<AstItem> items;
};

/// A recorded syntax problem; the lenient parser continues past these.
struct SyntaxError {
  SourceSpan span;
  std::string message;
};

/// Parses a whole program leniently. Always returns a (possibly partial)
/// program; problems are appended to `errors`.
AstProgram ParseProgramAst(std::string_view text,
                           std::vector<SyntaxError>& errors);

/// Parses a standalone expression leniently; null when nothing parseable
/// was found. Trailing input after the expression is an error.
AstExprPtr ParseExprAst(std::string_view text,
                        std::vector<SyntaxError>& errors);

}  // namespace viewcap

#endif  // VIEWCAP_ALGEBRA_AST_H_
