#include "algebra/parser.h"

#include <utility>

#include "base/strings.h"

namespace viewcap {

namespace {

/// Renders the first recorded syntax error as the strict layer's Status.
Status FirstSyntaxError(const std::vector<SyntaxError>& errors) {
  const SyntaxError& first = errors.front();
  return Status::ParseError(
      StrCat(first.message, " at ", ToString(first.span)));
}

/// Re-tags a status with a source location appended to its message,
/// preserving the code (typing failures stay kIllFormed).
Status Locate(const Status& status, const SourceSpan& span) {
  return Status(status.code(),
                StrCat(status.message(), " at ", ToString(span)));
}

}  // namespace

Result<ExprPtr> LowerExpr(Catalog& catalog, const AstExpr& expr) {
  switch (expr.kind) {
    case AstExpr::Kind::kRel: {
      Result<RelId> rel = catalog.FindRelation(expr.rel);
      if (!rel.ok()) {
        return Status::ParseError(StrCat("unknown relation '", expr.rel,
                                         "' at ", ToString(expr.span)));
      }
      return Expr::Rel(catalog, *rel);
    }
    case AstExpr::Kind::kProject: {
      if (expr.projection.empty()) {
        return Status::ParseError(
            StrCat("empty projection list at ", ToString(expr.span)));
      }
      std::vector<AttrId> attrs;
      attrs.reserve(expr.projection.size());
      for (const AstAttr& attr : expr.projection) {
        attrs.push_back(catalog.AddAttribute(attr.name));
      }
      VIEWCAP_ASSIGN_OR_RETURN(ExprPtr child,
                               LowerExpr(catalog, *expr.children.front()));
      Result<ExprPtr> project =
          Expr::Project(AttrSet(std::move(attrs)), std::move(child));
      if (!project.ok()) return Locate(project.status(), expr.span);
      return project;
    }
    case AstExpr::Kind::kJoin: {
      std::vector<ExprPtr> children;
      children.reserve(expr.children.size());
      for (const AstExprPtr& child : expr.children) {
        VIEWCAP_ASSIGN_OR_RETURN(ExprPtr lowered, LowerExpr(catalog, *child));
        children.push_back(std::move(lowered));
      }
      Result<ExprPtr> join = Expr::Join(std::move(children));
      if (!join.ok()) return Locate(join.status(), expr.span);
      return join;
    }
  }
  return Status::Internal("unhandled AST expression kind");
}

Result<ParsedProgram> LowerProgram(Catalog& catalog,
                                   const AstProgram& program) {
  ParsedProgram parsed;
  for (const AstItem& item : program.items) {
    if (item.kind == AstItem::Kind::kSchema) {
      for (const AstRelationDecl& decl : item.relations) {
        std::vector<AttrId> attrs;
        attrs.reserve(decl.attributes.size());
        for (const AstAttr& attr : decl.attributes) {
          attrs.push_back(catalog.AddAttribute(attr.name));
        }
        Result<RelId> rel =
            catalog.AddRelation(decl.name, AttrSet(std::move(attrs)));
        if (!rel.ok()) return Locate(rel.status(), decl.name_span);
        parsed.base_relations.push_back(*rel);
      }
      continue;
    }
    ParsedView view;
    view.name = item.view.name;
    view.name_span = item.view.name_span;
    for (const AstDefinition& def : item.view.definitions) {
      VIEWCAP_ASSIGN_OR_RETURN(ExprPtr query, LowerExpr(catalog, *def.query));
      // A view relation name has the type TRS(E_i) of its defining query.
      Result<RelId> rel = catalog.AddRelation(def.name, query->trs());
      if (!rel.ok()) return Locate(rel.status(), def.name_span);
      view.definitions.push_back(
          ParsedDefinition{*rel, std::move(query), def.name, def.name_span});
    }
    parsed.views.push_back(std::move(view));
  }
  return parsed;
}

Result<ExprPtr> ParseExpr(Catalog& catalog, std::string_view text) {
  std::vector<SyntaxError> errors;
  AstExprPtr ast = ParseExprAst(text, errors);
  if (!errors.empty()) return FirstSyntaxError(errors);
  if (ast == nullptr) {
    return Status::ParseError("expected expression at 1:1");
  }
  return LowerExpr(catalog, *ast);
}

Result<ParsedProgram> ParseProgram(Catalog& catalog, std::string_view text) {
  std::vector<SyntaxError> errors;
  AstProgram ast = ParseProgramAst(text, errors);
  if (!errors.empty()) return FirstSyntaxError(errors);
  return LowerProgram(catalog, ast);
}

}  // namespace viewcap
