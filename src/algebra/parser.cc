#include "algebra/parser.h"

#include <cctype>

#include "base/strings.h"

namespace viewcap {

namespace {

enum class TokKind {
  kIdent,
  kLBrace,
  kRBrace,
  kLParen,
  kRParen,
  kComma,
  kSemicolon,
  kStar,
  kAssign,  // :=
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 1;
  int column = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipWhitespaceAndComments();
      if (pos_ >= text_.size()) break;
      const int line = line_;
      const int column = column_;
      char c = text_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string ident;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_')) {
          ident += text_[pos_];
          Advance();
        }
        out.push_back({TokKind::kIdent, std::move(ident), line, column});
        continue;
      }
      if (c == ':' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
        Advance();
        Advance();
        out.push_back({TokKind::kAssign, ":=", line, column});
        continue;
      }
      TokKind kind;
      switch (c) {
        case '{': kind = TokKind::kLBrace; break;
        case '}': kind = TokKind::kRBrace; break;
        case '(': kind = TokKind::kLParen; break;
        case ')': kind = TokKind::kRParen; break;
        case ',': kind = TokKind::kComma; break;
        case ';': kind = TokKind::kSemicolon; break;
        case '*': kind = TokKind::kStar; break;
        default:
          return Status::ParseError(StrCat("unexpected character '", c,
                                           "' at ", line, ":", column));
      }
      Advance();
      out.push_back({kind, std::string(1, c), line, column});
    }
    out.push_back({TokKind::kEnd, "", line_, column_});
    return out;
  }

 private:
  void Advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '#' || (c == '/' && pos_ + 1 < text_.size() &&
                              text_[pos_ + 1] == '/')) {
        while (pos_ < text_.size() && text_[pos_] != '\n') Advance();
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

class Parser {
 public:
  Parser(Catalog& catalog, std::vector<Token> tokens)
      : catalog_(catalog), tokens_(std::move(tokens)) {}

  Result<ExprPtr> ParseExprOnly() {
    VIEWCAP_ASSIGN_OR_RETURN(ExprPtr expr, ParseJoin());
    VIEWCAP_RETURN_NOT_OK(Expect(TokKind::kEnd, "end of input"));
    return expr;
  }

  Result<ParsedProgram> ParseWholeProgram() {
    ParsedProgram program;
    while (Peek().kind != TokKind::kEnd) {
      if (Peek().kind != TokKind::kIdent) {
        return Error("expected 'schema' or 'view'");
      }
      if (Peek().text == "schema") {
        VIEWCAP_RETURN_NOT_OK(ParseSchemaBlock(program));
      } else if (Peek().text == "view") {
        VIEWCAP_RETURN_NOT_OK(ParseViewBlock(program));
      } else {
        return Error(StrCat("expected 'schema' or 'view', found '",
                            Peek().text, "'"));
      }
    }
    return program;
  }

 private:
  const Token& Peek() const { return tokens_[index_]; }
  Token Take() { return tokens_[index_++]; }

  Status Error(std::string what) const {
    const Token& t = Peek();
    return Status::ParseError(
        StrCat(what, " at ", t.line, ":", t.column));
  }

  Status Expect(TokKind kind, std::string_view what) {
    if (Peek().kind != kind) return Error(StrCat("expected ", what));
    Take();
    return Status::OK();
  }

  Result<std::string> ExpectIdent(std::string_view what) {
    if (Peek().kind != TokKind::kIdent) {
      return Status(StatusCode::kParseError,
                    Error(StrCat("expected ", what)).message());
    }
    return Take().text;
  }

  // attr_list := IDENT ("," IDENT)* ; attributes are interned on sight.
  Result<AttrSet> ParseAttrList() {
    std::vector<AttrId> attrs;
    while (true) {
      VIEWCAP_ASSIGN_OR_RETURN(std::string name,
                               ExpectIdent("attribute name"));
      attrs.push_back(catalog_.AddAttribute(name));
      if (Peek().kind != TokKind::kComma) break;
      Take();
    }
    return AttrSet(std::move(attrs));
  }

  Status ParseSchemaBlock(ParsedProgram& program) {
    Take();  // 'schema'
    VIEWCAP_RETURN_NOT_OK(Expect(TokKind::kLBrace, "'{'"));
    while (Peek().kind != TokKind::kRBrace) {
      VIEWCAP_ASSIGN_OR_RETURN(std::string name,
                               ExpectIdent("relation name"));
      VIEWCAP_RETURN_NOT_OK(Expect(TokKind::kLParen, "'('"));
      VIEWCAP_ASSIGN_OR_RETURN(AttrSet scheme, ParseAttrList());
      VIEWCAP_RETURN_NOT_OK(Expect(TokKind::kRParen, "')'"));
      VIEWCAP_RETURN_NOT_OK(Expect(TokKind::kSemicolon, "';'"));
      VIEWCAP_ASSIGN_OR_RETURN(RelId rel,
                               catalog_.AddRelation(name, scheme));
      program.base_relations.push_back(rel);
    }
    Take();  // '}'
    return Status::OK();
  }

  Status ParseViewBlock(ParsedProgram& program) {
    Take();  // 'view'
    ParsedView view;
    VIEWCAP_ASSIGN_OR_RETURN(view.name, ExpectIdent("view name"));
    VIEWCAP_RETURN_NOT_OK(Expect(TokKind::kLBrace, "'{'"));
    while (Peek().kind != TokKind::kRBrace) {
      VIEWCAP_ASSIGN_OR_RETURN(std::string rel_name,
                               ExpectIdent("view relation name"));
      VIEWCAP_RETURN_NOT_OK(Expect(TokKind::kAssign, "':='"));
      VIEWCAP_ASSIGN_OR_RETURN(ExprPtr expr, ParseJoin());
      VIEWCAP_RETURN_NOT_OK(Expect(TokKind::kSemicolon, "';'"));
      // A view relation name has the type TRS(E_i) of its defining query.
      VIEWCAP_ASSIGN_OR_RETURN(RelId rel,
                               catalog_.AddRelation(rel_name, expr->trs()));
      view.definitions.push_back(ParsedDefinition{rel, std::move(expr)});
    }
    Take();  // '}'
    program.views.push_back(std::move(view));
    return Status::OK();
  }

  // expr := term ("*" term)*
  Result<ExprPtr> ParseJoin() {
    VIEWCAP_ASSIGN_OR_RETURN(ExprPtr first, ParseTerm());
    std::vector<ExprPtr> operands{std::move(first)};
    while (Peek().kind == TokKind::kStar) {
      Take();
      VIEWCAP_ASSIGN_OR_RETURN(ExprPtr next, ParseTerm());
      operands.push_back(std::move(next));
    }
    if (operands.size() == 1) return operands[0];
    return Expr::Join(std::move(operands));
  }

  // term := pi{..}(expr) | (expr) | IDENT
  Result<ExprPtr> ParseTerm() {
    if (Peek().kind == TokKind::kLParen) {
      Take();
      VIEWCAP_ASSIGN_OR_RETURN(ExprPtr inner, ParseJoin());
      VIEWCAP_RETURN_NOT_OK(Expect(TokKind::kRParen, "')'"));
      return inner;
    }
    if (Peek().kind != TokKind::kIdent) {
      return Status(StatusCode::kParseError,
                    Error("expected expression").message());
    }
    if (Peek().text == "pi") {
      Take();
      VIEWCAP_RETURN_NOT_OK(Expect(TokKind::kLBrace, "'{'"));
      VIEWCAP_ASSIGN_OR_RETURN(AttrSet attrs, ParseAttrList());
      VIEWCAP_RETURN_NOT_OK(Expect(TokKind::kRBrace, "'}'"));
      VIEWCAP_RETURN_NOT_OK(Expect(TokKind::kLParen, "'('"));
      VIEWCAP_ASSIGN_OR_RETURN(ExprPtr inner, ParseJoin());
      VIEWCAP_RETURN_NOT_OK(Expect(TokKind::kRParen, "')'"));
      return Expr::Project(std::move(attrs), std::move(inner));
    }
    Token ident = Take();
    Result<RelId> rel = catalog_.FindRelation(ident.text);
    if (!rel.ok()) {
      return Status::ParseError(StrCat("unknown relation '", ident.text,
                                       "' at ", ident.line, ":",
                                       ident.column));
    }
    return Expr::Rel(catalog_, *rel);
  }

  Catalog& catalog_;
  std::vector<Token> tokens_;
  std::size_t index_ = 0;
};

}  // namespace

Result<ExprPtr> ParseExpr(Catalog& catalog, std::string_view text) {
  Lexer lexer(text);
  VIEWCAP_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(catalog, std::move(tokens));
  return parser.ParseExprOnly();
}

Result<ParsedProgram> ParseProgram(Catalog& catalog, std::string_view text) {
  Lexer lexer(text);
  VIEWCAP_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(catalog, std::move(tokens));
  return parser.ParseWholeProgram();
}

}  // namespace viewcap
