#include "algebra/expand.h"

#include "base/strings.h"

namespace viewcap {

Result<ExprPtr> Expand(const Catalog& catalog, const ExprPtr& expr,
                       const Definitions& defs) {
  switch (expr->kind()) {
    case Expr::Kind::kRelName: {
      auto it = defs.find(expr->rel());
      if (it == defs.end()) return expr;
      const ExprPtr& def = it->second;
      if (def->trs() != catalog.RelationScheme(expr->rel())) {
        return Status::IllFormed(
            StrCat("definition of '", catalog.RelationName(expr->rel()),
                   "' has TRS different from the name's type"));
      }
      return def;
    }
    case Expr::Kind::kProject: {
      VIEWCAP_ASSIGN_OR_RETURN(ExprPtr child,
                               Expand(catalog, expr->children()[0], defs));
      return Expr::Project(expr->projection(), std::move(child));
    }
    case Expr::Kind::kJoin: {
      std::vector<ExprPtr> children;
      children.reserve(expr->children().size());
      for (const ExprPtr& c : expr->children()) {
        VIEWCAP_ASSIGN_OR_RETURN(ExprPtr child, Expand(catalog, c, defs));
        children.push_back(std::move(child));
      }
      return Expr::Join(std::move(children));
    }
  }
  return Status::Internal("unreachable expression kind");
}

}  // namespace viewcap
