// Multirelational (m.r.) expressions: relation names, projections and
// joins (Section 1.2).
#ifndef VIEWCAP_ALGEBRA_EXPR_H_
#define VIEWCAP_ALGEBRA_EXPR_H_

#include <memory>
#include <vector>

#include "base/status.h"
#include "relation/catalog.h"

namespace viewcap {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// An immutable m.r. expression tree. Nodes carry their target relation
/// scheme TRS(E) computed at construction, so the inductive typing rules of
/// Section 1.2 are enforced once and queries stay well-typed by
/// construction.
class Expr {
 public:
  enum class Kind {
    kRelName,  ///< A relation name eta; TRS = R(eta).
    kProject,  ///< pi_X(E1); X nonempty subset of TRS(E1); TRS = X.
    kJoin,     ///< E1 |x| ... |x| En (n >= 2); TRS = union of child TRS.
  };

  /// Leaf: the relation name `rel` (type looked up in `catalog`).
  static ExprPtr Rel(const Catalog& catalog, RelId rel);

  /// pi_X(child); IllFormed unless X is a nonempty subset of TRS(child).
  /// A projection onto the full TRS is accepted (it is the identity map and
  /// the paper permits it, X need only be a nonempty subset).
  static Result<ExprPtr> Project(AttrSet x, ExprPtr child);

  /// Join of `children` (at least two).
  static Result<ExprPtr> Join(std::vector<ExprPtr> children);

  /// CHECK-failing conveniences for code where ill-formedness is a bug.
  static ExprPtr MustProject(AttrSet x, ExprPtr child);
  static ExprPtr MustJoin(std::vector<ExprPtr> children);
  /// Binary join convenience.
  static ExprPtr MustJoin2(ExprPtr left, ExprPtr right);

  Kind kind() const { return kind_; }
  /// TRS(E): the target relation scheme (Section 1.2).
  const AttrSet& trs() const { return trs_; }
  /// For kRelName: the name.
  RelId rel() const;
  /// For kProject: the projection list X.
  const AttrSet& projection() const;
  /// For kProject / kJoin: children (exactly one for kProject).
  const std::vector<ExprPtr>& children() const { return children_; }

  /// RN(E): the set of relation names appearing in the expression
  /// (Section 1.2), sorted.
  std::vector<RelId> RelNames() const;

  /// Number of relation-name occurrences (leaves). Algorithm 2.1.1 maps an
  /// expression with m leaves to a template with at most m tagged tuples;
  /// this drives the search budgets of Section 2.4.
  std::size_t LeafCount() const;

  /// Total node count.
  std::size_t NodeCount() const;

  /// Structural equality (not mapping equivalence; for that, build
  /// templates and use homomorphisms, Corollary 2.4.2).
  static bool StructurallyEqual(const Expr& a, const Expr& b);

 private:
  Expr(Kind kind, AttrSet trs) : kind_(kind), trs_(std::move(trs)) {}

  Kind kind_;
  AttrSet trs_;
  RelId rel_ = kInvalidRel;
  AttrSet projection_;
  std::vector<ExprPtr> children_;
};

}  // namespace viewcap

#endif  // VIEWCAP_ALGEBRA_EXPR_H_
