// Textual rendering of expressions and schemes; inverse of algebra/parser.h.
#ifndef VIEWCAP_ALGEBRA_PRINTER_H_
#define VIEWCAP_ALGEBRA_PRINTER_H_

#include <string>

#include "algebra/expr.h"

namespace viewcap {

/// Renders an attribute set as "{A, B, C}".
std::string ToString(const AttrSet& attrs, const Catalog& catalog);

/// Renders an expression in the parser's concrete syntax, e.g.
/// "pi{A, B}(r * s)". Joins print as '*'-separated children with
/// parentheses only where required for re-parsing.
std::string ToString(const Expr& expr, const Catalog& catalog);
std::string ToString(const ExprPtr& expr, const Catalog& catalog);

}  // namespace viewcap

#endif  // VIEWCAP_ALGEBRA_PRINTER_H_
