// Evaluation of m.r. expressions against instantiations (Section 1.2).
#ifndef VIEWCAP_ALGEBRA_EVAL_H_
#define VIEWCAP_ALGEBRA_EVAL_H_

#include "algebra/expr.h"
#include "relation/instantiation.h"

namespace viewcap {

/// E(alpha): the relation on TRS(E) defined inductively by
///   eta(alpha)        = alpha(eta)
///   [pi_X(E1)](alpha) = pi_X(E1(alpha))
///   [E1|x|...|x|En](alpha) = E1(alpha) |x| ... |x| En(alpha).
Relation Evaluate(const Expr& expr, const Instantiation& alpha);

}  // namespace viewcap

#endif  // VIEWCAP_ALGEBRA_EVAL_H_
