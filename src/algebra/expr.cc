#include "algebra/expr.h"

#include <algorithm>

#include "base/check.h"
#include "base/strings.h"

namespace viewcap {

ExprPtr Expr::Rel(const Catalog& catalog, RelId rel) {
  VIEWCAP_CHECK(catalog.HasRelation(rel));
  auto node = std::shared_ptr<Expr>(
      new Expr(Kind::kRelName, catalog.RelationScheme(rel)));
  node->rel_ = rel;
  return node;
}

Result<ExprPtr> Expr::Project(AttrSet x, ExprPtr child) {
  if (child == nullptr) {
    return Status::InvalidArgument("projection child is null");
  }
  if (x.empty()) {
    return Status::IllFormed("projection list must be nonempty");
  }
  if (!x.SubsetOf(child->trs())) {
    return Status::IllFormed(
        "projection list is not a subset of the child's TRS");
  }
  auto node = std::shared_ptr<Expr>(new Expr(Kind::kProject, x));
  node->projection_ = std::move(x);
  node->children_.push_back(std::move(child));
  return ExprPtr(node);
}

Result<ExprPtr> Expr::Join(std::vector<ExprPtr> children) {
  if (children.size() < 2) {
    return Status::IllFormed("join requires at least two operands");
  }
  AttrSet trs;
  for (const ExprPtr& c : children) {
    if (c == nullptr) return Status::InvalidArgument("join child is null");
    trs = trs.Union(c->trs());
  }
  auto node = std::shared_ptr<Expr>(new Expr(Kind::kJoin, std::move(trs)));
  node->children_ = std::move(children);
  return ExprPtr(node);
}

ExprPtr Expr::MustProject(AttrSet x, ExprPtr child) {
  Result<ExprPtr> r = Project(std::move(x), std::move(child));
  VIEWCAP_CHECK(r.ok());
  return std::move(r).value();
}

ExprPtr Expr::MustJoin(std::vector<ExprPtr> children) {
  Result<ExprPtr> r = Join(std::move(children));
  VIEWCAP_CHECK(r.ok());
  return std::move(r).value();
}

ExprPtr Expr::MustJoin2(ExprPtr left, ExprPtr right) {
  return MustJoin({std::move(left), std::move(right)});
}

RelId Expr::rel() const {
  VIEWCAP_CHECK(kind_ == Kind::kRelName);
  return rel_;
}

const AttrSet& Expr::projection() const {
  VIEWCAP_CHECK(kind_ == Kind::kProject);
  return projection_;
}

namespace {

void CollectRelNames(const Expr& e, std::vector<RelId>& out) {
  if (e.kind() == Expr::Kind::kRelName) {
    out.push_back(e.rel());
    return;
  }
  for (const ExprPtr& c : e.children()) CollectRelNames(*c, out);
}

}  // namespace

std::vector<RelId> Expr::RelNames() const {
  std::vector<RelId> out;
  CollectRelNames(*this, out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::size_t Expr::LeafCount() const {
  if (kind_ == Kind::kRelName) return 1;
  std::size_t n = 0;
  for (const ExprPtr& c : children_) n += c->LeafCount();
  return n;
}

std::size_t Expr::NodeCount() const {
  std::size_t n = 1;
  for (const ExprPtr& c : children_) n += c->NodeCount();
  return n;
}

bool Expr::StructurallyEqual(const Expr& a, const Expr& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Kind::kRelName:
      return a.rel_ == b.rel_;
    case Kind::kProject:
      return a.projection_ == b.projection_ &&
             StructurallyEqual(*a.children_[0], *b.children_[0]);
    case Kind::kJoin: {
      if (a.children_.size() != b.children_.size()) return false;
      for (std::size_t i = 0; i < a.children_.size(); ++i) {
        if (!StructurallyEqual(*a.children_[i], *b.children_[i])) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

}  // namespace viewcap
