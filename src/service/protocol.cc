#include "service/protocol.h"

#include <istream>
#include <ostream>
#include <utility>

#include "base/strings.h"
#include "core/report.h"

namespace viewcap {

namespace {

Status Missing(std::string_view method, std::string_view field) {
  return Status::InvalidArgument(
      StrCat("method '", method, "' needs a string param '", field, "'"));
}

/// Required string param.
Result<std::string> GetString(std::string_view method, const JsonValue* params,
                              std::string_view field) {
  const JsonValue* value =
      params != nullptr ? params->Find(field) : nullptr;
  if (value == nullptr || !value->is_string()) {
    return Missing(method, field);
  }
  return value->AsString();
}

/// Optional string param ("" when absent).
std::string OptString(const JsonValue* params, std::string_view field) {
  const JsonValue* value =
      params != nullptr ? params->Find(field) : nullptr;
  return value != nullptr ? value->AsString() : std::string();
}

const JsonValue* Opt(const JsonValue* params, std::string_view field) {
  return params != nullptr ? params->Find(field) : nullptr;
}

JsonValue CountersToJson(const CacheCounters& counters) {
  JsonValue obj = JsonValue::Object();
  obj.Set("requests", JsonValue::Number(static_cast<double>(counters.requests)));
  obj.Set("hits", JsonValue::Number(static_cast<double>(counters.hits())));
  obj.Set("runs", JsonValue::Number(static_cast<double>(counters.runs)));
  obj.Set("evictions",
          JsonValue::Number(static_cast<double>(counters.evictions)));
  obj.Set("entries", JsonValue::Number(static_cast<double>(counters.entries)));
  // Derived ratio, pre-rendered so every client shows the same figure
  // ("n/a" when the cache was never consulted).
  obj.Set("hit_rate",
          JsonValue::Str(RenderHitRate(counters.hits(), counters.requests)));
  return obj;
}

JsonValue IndexStatsToJson(const IndexStats& stats) {
  auto num = [](std::size_t n) {
    return JsonValue::Number(static_cast<double>(n));
  };
  JsonValue obj = JsonValue::Object();
  JsonValue membership = JsonValue::Object();
  membership.Set("lookups", num(stats.membership_lookups));
  membership.Set("hits", num(stats.membership_hits));
  membership.Set("fallbacks", num(stats.membership_fallbacks()));
  membership.Set("hit_rate",
                 JsonValue::Str(RenderHitRate(stats.membership_hits,
                                              stats.membership_lookups)));
  obj.Set("membership", std::move(membership));
  JsonValue dominance = JsonValue::Object();
  dominance.Set("lookups", num(stats.dominance_lookups));
  dominance.Set("hits", num(stats.dominance_hits));
  dominance.Set("fallbacks", num(stats.dominance_fallbacks()));
  dominance.Set("hit_rate",
                JsonValue::Str(RenderHitRate(stats.dominance_hits,
                                             stats.dominance_lookups)));
  obj.Set("dominance", std::move(dominance));
  obj.Set("limit_mismatches", num(stats.limit_mismatches));
  return obj;
}

JsonValue ErrorToJson(const Status& status) {
  JsonValue err = JsonValue::Object();
  err.Set("code", JsonValue::Str(std::string(StatusCodeName(status.code()))));
  err.Set("message", JsonValue::Str(status.message()));
  return err;
}

/// One full reply line: {"id": ..., "result"| "error": ...}.
std::string ReplyLine(JsonValue id, const char* key, JsonValue payload) {
  JsonValue reply = JsonValue::Object();
  reply.Set("id", std::move(id));
  reply.Set(key, std::move(payload));
  return WriteJson(reply);
}

}  // namespace

Result<Request> RequestFromJson(std::string_view method,
                                const JsonValue* params) {
  std::optional<RequestKind> kind = RequestKindFromName(method);
  if (!kind.has_value()) {
    return Status::InvalidArgument(StrCat("unknown method '", method, "'"));
  }
  Request req;
  req.kind = *kind;

  switch (req.kind) {
    case RequestKind::kList:
    case RequestKind::kLattice:
    case RequestKind::kReport:
    case RequestKind::kStats:
      break;
    case RequestKind::kLoad: {
      VIEWCAP_ASSIGN_OR_RETURN(req.program_text,
                               GetString(method, params, "program"));
      break;
    }
    case RequestKind::kExport:
    case RequestKind::kNonredundant:
    case RequestKind::kSimplify: {
      VIEWCAP_ASSIGN_OR_RETURN(req.view, GetString(method, params, "view"));
      break;
    }
    case RequestKind::kMinimize: {
      VIEWCAP_ASSIGN_OR_RETURN(req.query, GetString(method, params, "query"));
      break;
    }
    case RequestKind::kEquiv: {
      VIEWCAP_ASSIGN_OR_RETURN(req.view, GetString(method, params, "left"));
      VIEWCAP_ASSIGN_OR_RETURN(req.other_view,
                               GetString(method, params, "right"));
      break;
    }
    case RequestKind::kCompose: {
      VIEWCAP_ASSIGN_OR_RETURN(req.view, GetString(method, params, "inner"));
      VIEWCAP_ASSIGN_OR_RETURN(req.other_view,
                               GetString(method, params, "outer"));
      break;
    }
    case RequestKind::kAnswerable: {
      VIEWCAP_ASSIGN_OR_RETURN(req.view, GetString(method, params, "view"));
      VIEWCAP_ASSIGN_OR_RETURN(req.query, GetString(method, params, "query"));
      break;
    }
    case RequestKind::kCapacity: {
      VIEWCAP_ASSIGN_OR_RETURN(req.view, GetString(method, params, "view"));
      const JsonValue* leaves = Opt(params, "max_leaves");
      if (leaves == nullptr || leaves->AsSize() == 0) {
        return Status::InvalidArgument(
            "method 'capacity' needs a positive number param 'max_leaves'");
      }
      req.max_leaves = leaves->AsSize();
      break;
    }
    case RequestKind::kEval: {
      VIEWCAP_ASSIGN_OR_RETURN(req.view, GetString(method, params, "view"));
      VIEWCAP_ASSIGN_OR_RETURN(req.query, GetString(method, params, "query"));
      VIEWCAP_ASSIGN_OR_RETURN(req.data_text,
                               GetString(method, params, "data"));
      break;
    }
    case RequestKind::kLint: {
      VIEWCAP_ASSIGN_OR_RETURN(req.program_text,
                               GetString(method, params, "program"));
      req.program_path = OptString(params, "path");
      const std::string format = OptString(params, "format");
      if (format == "json") {
        req.lint.format = LintFormat::kJson;
      } else if (format == "sarif") {
        req.lint.format = LintFormat::kSarif;
      } else if (!format.empty() && format != "text") {
        return Status::InvalidArgument(
            StrCat("unknown lint format '", format, "'"));
      }
      if (const JsonValue* v = Opt(params, "semantic")) {
        req.lint.semantic = v->AsBool(true);
      }
      if (const JsonValue* v = Opt(params, "fix")) {
        req.lint.fix = v->AsBool();
      }
      if (const JsonValue* v = Opt(params, "fix_dry_run")) {
        req.lint.fix_dry_run = v->AsBool();
        if (req.lint.fix_dry_run) req.lint.fix = true;
      }
      if (const JsonValue* v = Opt(params, "baseline")) {
        req.lint.baseline_text = v->AsString();
        req.lint.have_baseline = v->is_string();
      }
      if (const JsonValue* v = Opt(params, "write_baseline")) {
        req.lint.want_baseline = v->AsBool();
      }
      if (const JsonValue* v = Opt(params, "max_semantic_definitions")) {
        req.lint.max_semantic_definitions =
            v->AsSize(req.lint.max_semantic_definitions);
      }
      break;
    }
  }

  // Common per-request knobs, valid on every method.
  if (const JsonValue* v = Opt(params, "threads")) {
    if (!v->is_number()) {
      return Status::InvalidArgument("param 'threads' must be a number");
    }
    req.threads = v->AsSize();
  }
  if (const JsonValue* v = Opt(params, "max_candidates")) {
    req.max_candidates = v->AsSize();
  }
  if (const JsonValue* v = Opt(params, "engine_stats")) {
    req.engine_stats = v->AsBool();
  }
  return req;
}

JsonValue RequestToJson(const Request& request) {
  JsonValue params = JsonValue::Object();
  switch (request.kind) {
    case RequestKind::kList:
    case RequestKind::kLattice:
    case RequestKind::kReport:
    case RequestKind::kStats:
      break;
    case RequestKind::kLoad:
      params.Set("program", JsonValue::Str(request.program_text));
      break;
    case RequestKind::kExport:
    case RequestKind::kNonredundant:
    case RequestKind::kSimplify:
      params.Set("view", JsonValue::Str(request.view));
      break;
    case RequestKind::kMinimize:
      params.Set("query", JsonValue::Str(request.query));
      break;
    case RequestKind::kEquiv:
      params.Set("left", JsonValue::Str(request.view));
      params.Set("right", JsonValue::Str(request.other_view));
      break;
    case RequestKind::kCompose:
      params.Set("inner", JsonValue::Str(request.view));
      params.Set("outer", JsonValue::Str(request.other_view));
      break;
    case RequestKind::kAnswerable:
      params.Set("view", JsonValue::Str(request.view));
      params.Set("query", JsonValue::Str(request.query));
      break;
    case RequestKind::kCapacity:
      params.Set("view", JsonValue::Str(request.view));
      params.Set("max_leaves",
                 JsonValue::Number(static_cast<double>(request.max_leaves)));
      break;
    case RequestKind::kEval:
      params.Set("view", JsonValue::Str(request.view));
      params.Set("query", JsonValue::Str(request.query));
      params.Set("data", JsonValue::Str(request.data_text));
      break;
    case RequestKind::kLint: {
      params.Set("program", JsonValue::Str(request.program_text));
      if (!request.program_path.empty()) {
        params.Set("path", JsonValue::Str(request.program_path));
      }
      const LintParams& lint = request.lint;
      if (lint.format == LintFormat::kJson) {
        params.Set("format", JsonValue::Str("json"));
      } else if (lint.format == LintFormat::kSarif) {
        params.Set("format", JsonValue::Str("sarif"));
      }
      if (!lint.semantic) params.Set("semantic", JsonValue::Bool(false));
      if (lint.fix && !lint.fix_dry_run) {
        params.Set("fix", JsonValue::Bool(true));
      }
      if (lint.fix_dry_run) params.Set("fix_dry_run", JsonValue::Bool(true));
      if (lint.have_baseline) {
        params.Set("baseline", JsonValue::Str(lint.baseline_text));
      }
      if (lint.want_baseline) {
        params.Set("write_baseline", JsonValue::Bool(true));
      }
      if (lint.max_semantic_definitions != LintParams().max_semantic_definitions) {
        params.Set("max_semantic_definitions",
                   JsonValue::Number(
                       static_cast<double>(lint.max_semantic_definitions)));
      }
      break;
    }
  }
  if (request.threads.has_value()) {
    params.Set("threads",
               JsonValue::Number(static_cast<double>(*request.threads)));
  }
  if (request.max_candidates > 0) {
    params.Set("max_candidates",
               JsonValue::Number(static_cast<double>(request.max_candidates)));
  }
  if (request.engine_stats) params.Set("engine_stats", JsonValue::Bool(true));

  JsonValue msg = JsonValue::Object();
  msg.Set("method", JsonValue::Str(std::string(RequestKindName(request.kind))));
  msg.Set("params", std::move(params));
  return msg;
}

JsonValue EngineStatsToJson(const EngineStats& stats) {
  JsonValue obj = JsonValue::Object();
  obj.Set("reduce", CountersToJson(stats.reduce));
  obj.Set("canonical_key", CountersToJson(stats.canonical_key));
  obj.Set("homomorphism", CountersToJson(stats.homomorphism));
  obj.Set("row_embedding", CountersToJson(stats.row_embedding));
  obj.Set("expansion", CountersToJson(stats.expansion));
  obj.Set("verdict", CountersToJson(stats.verdict));
  obj.Set("dominance", CountersToJson(stats.dominance));
  obj.Set("intern_requests",
          JsonValue::Number(static_cast<double>(stats.intern_requests)));
  obj.Set("intern_hits",
          JsonValue::Number(static_cast<double>(stats.intern_hits)));
  obj.Set("interned_classes",
          JsonValue::Number(static_cast<double>(stats.interned_classes)));
  obj.Set("equivalence_confirms",
          JsonValue::Number(static_cast<double>(stats.equivalence_confirms)));
  // Per-backend candidate-filter activity, keyed by backend name. Like
  // the rendered table, only backends that actually ran appear, and the
  // survivor rate is pre-rendered ("n/a" when no rows were filtered).
  JsonValue filter = JsonValue::Object();
  for (std::size_t b = 0; b < kNumSimdBackends; ++b) {
    const FilterBackendCounters& f = stats.filter[b];
    if (f.invocations == 0) continue;
    JsonValue entry = JsonValue::Object();
    entry.Set("invocations",
              JsonValue::Number(static_cast<double>(f.invocations)));
    entry.Set("rows", JsonValue::Number(static_cast<double>(f.rows)));
    entry.Set("survivors",
              JsonValue::Number(static_cast<double>(f.survivors)));
    entry.Set("survivor_rate",
              JsonValue::Str(RenderHitRate(f.survivors, f.rows)));
    filter.Set(std::string(SimdBackendName(static_cast<SimdBackend>(b))),
               std::move(entry));
  }
  obj.Set("filter", std::move(filter));
  return obj;
}

JsonValue ResponseToJson(const Response& response, RequestKind kind) {
  JsonValue result = JsonValue::Object();
  result.Set("ok", JsonValue::Bool(response.ok()));
  result.Set("exit_code",
             JsonValue::Number(static_cast<double>(response.exit_code)));
  result.Set("output", JsonValue::Str(response.output));
  if (!response.note.empty()) {
    result.Set("note", JsonValue::Str(response.note));
  }
  if (response.verdict.has_value()) {
    result.Set("verdict", JsonValue::Bool(*response.verdict));
  }
  if (response.inconclusive) {
    result.Set("inconclusive", JsonValue::Bool(true));
  }
  if (!response.witness.empty()) {
    result.Set("witness", JsonValue::Str(response.witness));
  }
  if (kind == RequestKind::kLint) {
    JsonValue lint = JsonValue::Object();
    lint.Set("errors",
             JsonValue::Number(static_cast<double>(response.lint_errors)));
    lint.Set("warnings",
             JsonValue::Number(static_cast<double>(response.lint_warnings)));
    lint.Set("notes",
             JsonValue::Number(static_cast<double>(response.lint_notes)));
    lint.Set("suppressed",
             JsonValue::Number(static_cast<double>(response.lint_suppressed)));
    if (response.edits_applied > 0 || response.fix_rounds > 0) {
      lint.Set("edits_applied",
               JsonValue::Number(static_cast<double>(response.edits_applied)));
      lint.Set("fix_rounds",
               JsonValue::Number(static_cast<double>(response.fix_rounds)));
      lint.Set("fix_clean", JsonValue::Bool(response.fix_clean));
    }
    if (!response.fixed_text.empty()) {
      lint.Set("fixed_program", JsonValue::Str(response.fixed_text));
    }
    if (!response.baseline_text.empty()) {
      lint.Set("baseline", JsonValue::Str(response.baseline_text));
    }
    result.Set("lint", std::move(lint));
  }
  if (response.has_engine_stats) {
    result.Set("engine_stats", EngineStatsToJson(response.engine_stats));
  }
  if (response.has_index_stats) {
    result.Set("index", IndexStatsToJson(response.index_stats));
  }
  return result;
}

LineOutcome HandleRequestLine(Dispatcher& dispatcher, ServerStats* server,
                              std::string_view line) {
  if (server != nullptr) {
    server->requests.fetch_add(1, std::memory_order_relaxed);
  }
  LineOutcome outcome;

  Result<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok()) {
    outcome.reply =
        ReplyLine(JsonValue::Null(), "error", ErrorToJson(parsed.status()));
    return outcome;
  }
  JsonValue id = JsonValue::Null();
  if (const JsonValue* found = parsed->Find("id")) id = *found;
  const JsonValue* method = parsed->Find("method");
  if (method == nullptr || !method->is_string()) {
    outcome.reply = ReplyLine(
        std::move(id), "error",
        ErrorToJson(Status::InvalidArgument(
            "request must be an object with a string 'method'")));
    return outcome;
  }

  // Server-level methods, outside the dispatcher's request model.
  if (method->AsString() == "ping") {
    JsonValue result = JsonValue::Object();
    result.Set("ok", JsonValue::Bool(true));
    outcome.reply = ReplyLine(std::move(id), "result", std::move(result));
    return outcome;
  }
  if (method->AsString() == "shutdown") {
    JsonValue result = JsonValue::Object();
    result.Set("ok", JsonValue::Bool(true));
    result.Set("shutting_down", JsonValue::Bool(true));
    outcome.reply = ReplyLine(std::move(id), "result", std::move(result));
    outcome.shutdown = true;
    return outcome;
  }

  Result<Request> request =
      RequestFromJson(method->AsString(), parsed->Find("params"));
  if (!request.ok()) {
    outcome.reply =
        ReplyLine(std::move(id), "error", ErrorToJson(request.status()));
    return outcome;
  }

  Response response = dispatcher.Handle(*request);
  if (!response.ok()) {
    outcome.reply =
        ReplyLine(std::move(id), "error", ErrorToJson(response.status));
    return outcome;
  }
  JsonValue result = ResponseToJson(response, request->kind);
  if (request->kind == RequestKind::kStats && server != nullptr) {
    result.Set("uptime_seconds", JsonValue::Number(server->UptimeSeconds()));
    result.Set("requests",
               JsonValue::Number(static_cast<double>(
                   server->requests.load(std::memory_order_relaxed))));
    result.Set("sessions",
               JsonValue::Number(static_cast<double>(
                   server->sessions.load(std::memory_order_relaxed))));
  }
  outcome.reply = ReplyLine(std::move(id), "result", std::move(result));
  return outcome;
}

bool ServeSession(Dispatcher& dispatcher, ServerStats* server,
                  std::istream& in, std::ostream& out) {
  if (server != nullptr) {
    server->sessions.fetch_add(1, std::memory_order_relaxed);
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    LineOutcome outcome = HandleRequestLine(dispatcher, server, line);
    out << outcome.reply << '\n';
    out.flush();
    if (outcome.shutdown) return true;
  }
  return false;
}

}  // namespace viewcap
