// The line-delimited JSON-RPC protocol of viewcapd.
//
// Framing: one JSON object per line in each direction (empty lines are
// ignored). A request is
//
//   {"id": 7, "method": "answerable",
//    "params": {"view": "W", "query": "r", "threads": 2}}
//
// and the reply echoes the id with either "result" or "error":
//
//   {"id": 7, "result": {"ok": true, "exit_code": 0, "verdict": true,
//                        "witness": "w1 * w2", "output": "answerable..."}}
//   {"id": 7, "error": {"code": "NotFound", "message": "view 'X'"}}
//
// Methods are the Request kinds (service/dispatcher.h) by their canonical
// names — load, list, export, equiv, answerable (alias membership),
// nonredundant, simplify, lattice, minimize, capacity, eval, compose,
// report (alias analyze), lint, stats — plus the server-level "ping" and
// "shutdown". The "stats" reply carries the live engine snapshot
// (Engine::StatsSnapshot) plus uptime/request/session counters.
//
// Every analysis reply's "output" field is byte-identical to the one-shot
// CLI's stdout for the same command: both front ends share the
// Dispatcher, and tools/diff_cli_daemon.py pins the equality.
#ifndef VIEWCAP_SERVICE_PROTOCOL_H_
#define VIEWCAP_SERVICE_PROTOCOL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "service/dispatcher.h"
#include "service/json.h"

namespace viewcap {

/// Server-level counters the `stats` method reports next to the engine
/// snapshot. One instance per server process, shared by all sessions.
struct ServerStats {
  std::atomic<std::uint64_t> requests{0};  ///< Protocol lines handled.
  std::atomic<std::uint64_t> sessions{0};  ///< Sessions ever opened.
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();

  double UptimeSeconds() const {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
  }
};

/// Builds the typed Request for `method` from JSON-RPC `params`
/// (nullable). Fails with InvalidArgument on unknown methods or missing
/// required params. "ping"/"shutdown" are server-level, not request
/// kinds, and are rejected here — HandleRequestLine intercepts them.
Result<Request> RequestFromJson(std::string_view method,
                                const JsonValue* params);

/// The protocol rendering of `request` — {"method", "params"} without an
/// id. Inverse of RequestFromJson (used by tests and client generators).
JsonValue RequestToJson(const Request& request);

/// The "result" object for a successful (status-OK) response. `kind`
/// selects which structured facts apply (lint counters, verdicts).
JsonValue ResponseToJson(const Response& response, RequestKind kind);

/// Structured form of an EngineStats snapshot.
JsonValue EngineStatsToJson(const EngineStats& stats);

/// Outcome of one protocol line.
struct LineOutcome {
  std::string reply;      ///< One JSON line (no trailing newline).
  bool shutdown = false;  ///< The client asked the server to stop.
};

/// Handles one request line end to end: parse, intercept ping/shutdown/
/// stats enrichment, dispatch, serialize. Never throws and always
/// produces a reply line (malformed JSON gets an error with id null).
/// `server` may be null (no server-level counters; `stats` then reports
/// only the engine snapshot).
LineOutcome HandleRequestLine(Dispatcher& dispatcher, ServerStats* server,
                              std::string_view line);

/// Serves one session: reads request lines from `in` until EOF or a
/// shutdown request, writing one reply line (flushed) per request.
/// Returns true when the client requested server shutdown.
bool ServeSession(Dispatcher& dispatcher, ServerStats* server,
                  std::istream& in, std::ostream& out);

}  // namespace viewcap

#endif  // VIEWCAP_SERVICE_PROTOCOL_H_
