// The typed request/session model of the service core.
//
// One Request describes one command — the same set the one-shot CLI has
// always exposed (list, equiv, answerable, nonredundant, simplify,
// lattice, minimize, export, capacity, eval, compose, report) plus lint
// (with fix-its, baselines and SARIF), program loading, and the live
// `stats` method. One Response carries everything any front end needs:
// the byte-exact text the one-shot CLI prints to stdout, the CLI exit
// code, structured verdict facts for protocol clients, and the lint /
// engine-stats payloads.
//
// The Dispatcher is the single code path turning a Request into a
// Response against a Workspace. Both viewcap_cli (argv -> Request ->
// render) and viewcapd (JSON line -> Request -> JSON line) are thin
// shells over it, which is what makes their verdicts bit-identical by
// construction — the differential tests in tests/service_test.cc and
// tools/diff_cli_daemon.py pin that equality end to end.
//
// File I/O stays outside: Requests carry program/data/baseline *text*,
// Responses carry fixed-program/baseline text back, and the shells do the
// reading and writing. The dispatcher never touches the filesystem, so a
// daemon can serve requests for files it has no access to.
#ifndef VIEWCAP_SERVICE_DISPATCHER_H_
#define VIEWCAP_SERVICE_DISPATCHER_H_

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "service/workspace.h"

namespace viewcap {

/// Every command the service core can execute. kLoad/kStats exist for the
/// persistent front end; the rest map 1:1 onto the historical CLI verbs.
enum class RequestKind {
  kList,
  kExport,
  kEquiv,
  kAnswerable,
  kNonredundant,
  kSimplify,
  kLattice,
  kMinimize,
  kCapacity,
  kEval,
  kCompose,
  kReport,
  kLint,
  kLoad,
  kStats,
};

/// Canonical protocol method name ("answerable", "lint", ...).
std::string_view RequestKindName(RequestKind kind);

/// Inverse of RequestKindName, accepting the CLI aliases too
/// ("membership" -> kAnswerable, "analyze" -> kReport).
std::optional<RequestKind> RequestKindFromName(std::string_view name);

/// Output format of a lint request.
enum class LintFormat { kText, kJson, kSarif };

/// Lint-only request knobs, mirroring the historical `lint` flags.
struct LintParams {
  LintFormat format = LintFormat::kText;
  /// Run the closure-based VCL1xx/VCL2xx rules.
  bool semantic = true;
  /// Apply every machine-applicable fix-it to a fixpoint; the fixed
  /// program comes back in Response::fixed_text (the CLI shell writes it
  /// over the input file) and the remaining findings are reported.
  bool fix = false;
  /// Like fix, but the fixed program becomes Response::output and no
  /// findings are rendered (the historical --fix-dry-run contract).
  bool fix_dry_run = false;
  /// Baseline file *content* to subtract (empty + !have_baseline = none).
  std::string baseline_text;
  bool have_baseline = false;
  /// Serialize the run's findings as a baseline into
  /// Response::baseline_text (the CLI shell writes --write-baseline).
  bool want_baseline = false;
  /// Mirrors LintOptions::max_semantic_definitions.
  std::size_t max_semantic_definitions = 24;
};

/// One command for the dispatcher. Field use by kind:
///   kLoad                program_text
///   kList, kLattice, kReport, kStats   (none)
///   kExport, kNonredundant, kSimplify  view
///   kEquiv               view, other_view
///   kAnswerable          view, query
///   kMinimize            query
///   kCapacity            view, max_leaves
///   kEval                view, query, data_text
///   kCompose             view (inner), other_view (outer)
///   kLint                program_text, program_path (label), lint
struct Request {
  RequestKind kind = RequestKind::kList;
  std::string program_text;
  /// Path label used in rendered lint output and diagnostics; never opened.
  std::string program_path;
  std::string view;
  std::string other_view;
  std::string query;
  std::string data_text;
  std::size_t max_leaves = 0;
  /// Per-request closure-search thread count (SearchLimits::threads;
  /// 1 = serial, 0 = hardware concurrency). Unset keeps the workspace
  /// default. Verdicts are identical for every value.
  std::optional<std::size_t> threads;
  /// Per-request candidate budget override; 0 keeps the workspace default.
  std::size_t max_candidates = 0;
  /// Append the engine's cache statistics after the command output
  /// (the historical --engine-stats flag).
  bool engine_stats = false;
  LintParams lint;
};

/// What a command produced. `output` is byte-identical to what the
/// one-shot CLI prints on stdout for the same request; `exit_code`
/// follows the CLI conventions (0 ok; 1 error; 3 negative verdict /
/// lint warnings; 4 lint errors).
struct Response {
  Status status = Status::OK();
  int exit_code = 0;
  std::string output;
  /// Informational line the CLI prints to stderr even on success (the
  /// lint fix summary); empty otherwise.
  std::string note;

  /// Boolean verdict for kEquiv (equivalent) / kAnswerable (member).
  std::optional<bool> verdict;
  /// A negative verdict was reached with an exhausted search budget, so
  /// it is not a proof.
  bool inconclusive = false;
  /// Rendered witness expression for a positive kAnswerable verdict.
  std::string witness;

  // Lint facts (kLint only).
  std::size_t lint_errors = 0;
  std::size_t lint_warnings = 0;
  std::size_t lint_notes = 0;
  std::size_t lint_suppressed = 0;
  std::size_t edits_applied = 0;
  std::size_t fix_rounds = 0;
  bool fix_clean = false;
  /// The fixed program after a fix run (also set on dry runs).
  std::string fixed_text;
  /// Serialized baseline when LintParams::want_baseline was set.
  std::string baseline_text;

  /// Engine statistics snapshot (kStats, or any request with
  /// Request::engine_stats).
  bool has_engine_stats = false;
  EngineStats engine_stats;

  /// Serving counters of the attached persistent capacity index. Only
  /// populated alongside engine_stats and only when the workspace has an
  /// index attached, so index-less deployments render byte-identically to
  /// builds that predate the index.
  bool has_index_stats = false;
  IndexStats index_stats;

  bool ok() const { return status.ok(); }
};

/// The single execution path from Request to Response. Stateless apart
/// from the borrowed Workspace; safe for concurrent Handle calls from
/// many sessions (locking per the Workspace contract).
class Dispatcher {
 public:
  explicit Dispatcher(Workspace* workspace) : workspace_(workspace) {}

  Response Handle(const Request& request);

 private:
  /// Request limits = workspace defaults + per-request overrides.
  SearchLimits LimitsFor(const Request& request) const;

  Response HandleLint(const Request& request) const;

  Workspace* workspace_;
};

}  // namespace viewcap

#endif  // VIEWCAP_SERVICE_DISPATCHER_H_
