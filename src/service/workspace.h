// Workspace: the long-lived state behind one serving process.
//
// A Workspace owns exactly one Analyzer — and through it the catalog and
// the warm, thread-safe Engine (engine/engine.h) — for the lifetime of the
// process. Every front end (the one-shot viewcap_cli, the viewcapd
// daemon, tests) funnels requests through a Dispatcher over one Workspace,
// so the warm-engine steady state that BENCH_capacity.json measures
// (10-100x over a cold run) is what repeated requests actually hit.
//
// Concurrency contract (see DESIGN.md, "Service core"): the Engine itself
// is safe for concurrent use, but the surrounding program state is not —
// ParseExpr interns attributes into the shared catalog, redundancy/
// simplify/compose register result views, and Simplify mints catalog
// relations. The Workspace therefore classifies request handling into two
// lock classes on one reader/writer mutex:
//
//   - shared   (WithShared): handlers that only read the view map and run
//     engine searches — list, export, equivalence, lattice, stats. Any
//     number run concurrently; their closure searches multiplex onto the
//     engine's striped caches and shared thread pool.
//   - exclusive (WithExclusive): handlers that parse expressions, mint
//     relations, or register views — load, membership, minimize, eval,
//     capacity, redundancy, simplify, compose, report.
//
// Handlers running under the shared lock must not call the Analyzer
// methods that read its mutable default SearchLimits; they pass explicit
// per-request limits instead (the Analyzer's explicit-limits overloads),
// so nothing mutates under a shared lock. Verdicts stay bit-identical
// regardless of interleaving: the engine's compute-once caches make every
// verdict a function of the request, not of thread timing (PR 5's
// determinism guarantee), which the concurrent-session tests pin.
#ifndef VIEWCAP_SERVICE_WORKSPACE_H_
#define VIEWCAP_SERVICE_WORKSPACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <utility>

#include "core/analyzer.h"
#include "index/index_reader.h"
#include "index/index_writer.h"

namespace viewcap {

class Workspace {
 public:
  /// `default_limits` seeds the per-request SearchLimits when a request
  /// does not override them (the daemon's --threads / --max-candidates
  /// startup flags).
  explicit Workspace(SearchLimits default_limits = {})
      : default_limits_(default_limits) {
    analyzer_.set_limits(default_limits);
  }

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Parses and registers `program_text`'s schema and views into the
  /// shared analyzer (exclusive). View names accumulate across loads, so
  /// a daemon can grow its workspace one program at a time; a duplicate
  /// view name fails the load and leaves earlier state intact.
  Status Load(std::string_view program_text) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    return analyzer_.Load(program_text);
  }

  /// Runs `fn(analyzer)` under the shared (reader) lock. `fn` must follow
  /// the file-comment contract: no catalog/view mutation, explicit limits.
  template <typename Fn>
  auto WithShared(Fn&& fn) {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return std::forward<Fn>(fn)(analyzer_);
  }

  /// Runs `fn(analyzer)` under the exclusive (writer) lock.
  template <typename Fn>
  auto WithExclusive(Fn&& fn) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    return std::forward<Fn>(fn)(analyzer_);
  }

  const SearchLimits& default_limits() const { return default_limits_; }

  /// Opens the persistent capacity index at `path`, validates it against
  /// the loaded program's catalog (exclusive: attach changes what every
  /// subsequent verdict consults) and attaches it to the engine. A stale
  /// or corrupt index is a structured error and leaves the workspace
  /// serving live, never a silently wrong answer.
  Status AttachIndex(const std::string& path) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    VIEWCAP_ASSIGN_OR_RETURN(std::unique_ptr<IndexReader> reader,
                             IndexReader::Open(path, &analyzer_.catalog()));
    index_ = std::move(reader);
    analyzer_.engine().AttachIndex(index_.get());
    return Status::OK();
  }

  /// Builds (and publishes at `path`) an index over the loaded program
  /// (exclusive: the build saturates the shared engine).
  Result<IndexBuildStats> BuildIndex(const std::string& path,
                                     const IndexBuildOptions& options) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    return BuildIndexFile(analyzer_, path, options);
  }

  bool has_index() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return index_ != nullptr;
  }

  /// Counters of the attached index, or nullopt when serving live-only.
  std::optional<IndexStats> IndexStatsSnapshot() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (index_ == nullptr) return std::nullopt;
    return index_->StatsSnapshot();
  }

  /// Consistent copy of the shared engine's counters (thread-safe, no
  /// workspace lock: the engine publishes its own snapshot).
  EngineStats EngineStatsSnapshot() const {
    return analyzer_.engine_stats();
  }

  /// Served-request counter for the daemon's `stats` method. Counted once
  /// per dispatched request, including failed ones.
  void CountRequest() {
    requests_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::shared_mutex mu_;
  Analyzer analyzer_;
  SearchLimits default_limits_;
  /// Attached persistent capacity index; must outlive its attachment to
  /// the engine, so it is owned here next to the analyzer.
  std::unique_ptr<IndexReader> index_;
  std::atomic<std::uint64_t> requests_{0};
};

}  // namespace viewcap

#endif  // VIEWCAP_SERVICE_WORKSPACE_H_
