// The canonical command-line grammar shared by every front end.
//
// Historically tools/viewcap_cli.cc parsed flags ad hoc and dispatched
// lint through a special case (`args[0] == "lint" || args[1] == "lint"`).
// This header owns the one grammar both shells use:
//
//   <program-file> <command> [args...] [--flags]
//   lint <program-file> [--flags]          (also: <program-file> lint)
//   index build <program-file> <index-file> [--build-leaves=N ...]
//   index query <index-file> <program-file> <command> [args...]
//   index info <index-file>
//
// Flags may appear anywhere; `--threads=N`, `--max-candidates=N` and
// `--engine-stats` are valid on every command, the lint flags only on
// lint. ParseCommandLine turns argv into a typed Request plus the file
// side effects the shell must perform (which files to read before
// dispatch and to write after) — the dispatcher itself never touches the
// filesystem.
#ifndef VIEWCAP_SERVICE_CLI_H_
#define VIEWCAP_SERVICE_CLI_H_

#include <string>
#include <vector>

#include "service/dispatcher.h"

namespace viewcap {

/// What the persistent-index subcommand asks of the shell. kQuery also
/// covers the global `--index=<path>` flag: attach the index, then run
/// the ordinary command against it.
enum class IndexAction { kNone, kBuild, kQuery, kInfo };

/// A parsed command line: the Request to dispatch plus the shell-side
/// file effects. Paths are what the user named; the shell reads
/// program/data/baseline files into the Request before dispatching and
/// writes fixed-program/baseline text from the Response after.
struct CliInvocation {
  Request request;
  /// Program file to read into request.program_text (every command).
  std::string program_path;
  /// Data file to read into request.data_text (eval only).
  std::string data_path;
  /// Baseline file to read into request.lint.baseline_text (lint).
  std::string baseline_path;
  /// File to write Response::baseline_text to (lint --write-baseline).
  std::string write_baseline_path;
  /// Write Response::fixed_text back over program_path (lint --fix).
  bool fix_in_place = false;

  /// Persistent capacity index handling (kNone for ordinary commands).
  IndexAction index_action = IndexAction::kNone;
  /// Index file to build (kBuild), attach (kQuery), or inspect (kInfo).
  std::string index_path;
  /// `index build` saturation budget (IndexBuildOptions::max_leaves).
  std::size_t index_build_leaves = 4;
  /// `index build` per-view entry cap (max_entries_per_view).
  std::size_t index_build_entries = 256;
};

/// Parses `argv` (without the binary name) against the canonical grammar.
/// Fails with InvalidArgument on unknown commands, arity mismatches,
/// malformed counts, or flags used outside their command; the message is
/// the diagnostic to print (may be empty when the usage text says it all).
Result<CliInvocation> ParseCommandLine(const std::vector<std::string>& argv);

/// The usage text both shells print on a grammar error.
std::string UsageText();

/// Parses a decimal count ("--threads=N" values). Returns false on a
/// malformed number, leaving `*value` untouched; 0 is valid.
bool ParseCount(const std::string& text, std::size_t* value);

/// Reads a regular file fully into `*out`; false on any I/O failure
/// (including directories). Shared by the tool shells.
bool ReadFileToString(const std::string& path, std::string* out);

}  // namespace viewcap

#endif  // VIEWCAP_SERVICE_CLI_H_
