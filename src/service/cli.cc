#include "service/cli.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "base/strings.h"

namespace viewcap {

namespace {

Status UsageError(std::string message = "") {
  return Status::InvalidArgument(std::move(message));
}

/// One flag occurrence, split on the first '='.
struct Flag {
  std::string name;   // Includes the leading "--".
  std::string value;  // Empty when no '='.
  bool has_value = false;
};

Flag SplitFlag(const std::string& token) {
  Flag flag;
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos) {
    flag.name = token;
  } else {
    flag.name = token.substr(0, eq);
    flag.value = token.substr(eq + 1);
    flag.has_value = true;
  }
  return flag;
}

}  // namespace

bool ParseCount(const std::string& text, std::size_t* value) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return false;
  *value = static_cast<std::size_t>(parsed);
  return true;
}

bool ReadFileToString(const std::string& path, std::string* out) {
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) return false;
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

std::string UsageText() {
  return
      "usage: viewcap_cli <program-file> <command> [args...] "
      "[--engine-stats] [--threads=N]\n"
      "       viewcap_cli lint <program-file> "
      "[--format=text|json|sarif] [--no-semantic] [--threads=N]\n"
      "                   [--fix | --fix-dry-run] "
      "[--baseline=<file>] [--write-baseline=<file>]\n"
      "commands:\n"
      "  list\n"
      "  equiv <V> <W>\n"
      "  answerable <V> <query-expr>\n"
      "  nonredundant <V>\n"
      "  simplify <V>\n"
      "  lattice\n"
      "  minimize <query-expr>\n"
      "  export <V>\n"
      "  capacity <V> <max-leaves>\n"
      "  eval <V> <view-query> <data-file>\n"
      "  compose <inner> <outer>\n"
      "  report | analyze [--engine-stats]\n"
      "  lint [--format=text|json|sarif] [--no-semantic] [--fix]\n"
      "persistent capacity index:\n"
      "  index build <program-file> <index-file> "
      "[--build-leaves=N] [--build-entries=N]\n"
      "  index query <index-file> <program-file> <command> [args...]\n"
      "  index info <index-file>\n"
      "  (any command also accepts --index=<index-file> to serve from "
      "an index)\n";
}

Result<CliInvocation> ParseCommandLine(
    const std::vector<std::string>& argv) {
  CliInvocation inv;
  Request& req = inv.request;

  std::vector<std::string> positionals;
  std::vector<Flag> flags;
  for (const std::string& token : argv) {
    if (StartsWith(token, "--")) {
      flags.push_back(SplitFlag(token));
    } else {
      positionals.push_back(token);
    }
  }
  // The index subcommand leads its own grammar. build/info are handled
  // fully here; query strips its prefix and re-enters the ordinary
  // grammar below with the index path recorded for the shell to attach.
  if (!positionals.empty() && positionals[0] == "index") {
    if (positionals.size() < 2) {
      return UsageError("index needs a subcommand: build, query, or info");
    }
    const std::string& sub = positionals[1];
    if (sub == "build") {
      if (positionals.size() != 4) {
        return UsageError(
            "usage: viewcap_cli index build <program-file> <index-file>");
      }
      inv.index_action = IndexAction::kBuild;
      inv.program_path = positionals[2];
      inv.index_path = positionals[3];
      req.program_path = inv.program_path;
    } else if (sub == "info") {
      if (positionals.size() != 3) {
        return UsageError("usage: viewcap_cli index info <index-file>");
      }
      inv.index_action = IndexAction::kInfo;
      inv.index_path = positionals[2];
    } else if (sub == "query") {
      if (positionals.size() < 4) {
        return UsageError(
            "usage: viewcap_cli index query <index-file> <program-file> "
            "<command> [args...]");
      }
      inv.index_action = IndexAction::kQuery;
      inv.index_path = positionals[2];
      positionals.erase(positionals.begin(), positionals.begin() + 3);
    } else {
      return UsageError(StrCat("unknown index subcommand '", sub, "'"));
    }
    if (inv.index_action != IndexAction::kQuery) {
      // build/info take only the build knobs and the common limits.
      for (const Flag& flag : flags) {
        if (flag.name == "--build-leaves" || flag.name == "--build-entries") {
          if (inv.index_action != IndexAction::kBuild) {
            return UsageError(StrCat("flag '", flag.name,
                                     "' is only valid for 'index build'"));
          }
          std::size_t value = 0;
          if (!ParseCount(flag.value, &value) || value == 0) {
            return UsageError(
                StrCat("bad count '", flag.value, "' for ", flag.name));
          }
          (flag.name == "--build-leaves" ? inv.index_build_leaves
                                         : inv.index_build_entries) = value;
        } else if (flag.name == "--threads") {
          std::size_t value = 0;
          if (!ParseCount(flag.value, &value)) {
            return UsageError(StrCat("bad thread count '", flag.value, "'"));
          }
          req.threads = value;
        } else if (flag.name == "--max-candidates") {
          std::size_t value = 0;
          if (!ParseCount(flag.value, &value) || value == 0) {
            return UsageError(
                StrCat("bad candidate budget '", flag.value, "'"));
          }
          req.max_candidates = value;
        } else {
          return UsageError(StrCat("unknown flag '", flag.name,
                                   "' for 'index ", sub, "'"));
        }
      }
      return inv;
    }
  }

  if (positionals.size() < 2) return UsageError();

  // Resolve the command. Lint may lead ("lint <file>", the documented
  // form) or trail ("<file> lint", the historical alternative); both
  // normalize to the same Request here — no dispatch special case.
  std::string command;
  std::vector<std::string> args;  // Positional command arguments.
  if (positionals[0] == "lint") {
    command = "lint";
    inv.program_path = positionals[1];
    args.assign(positionals.begin() + 2, positionals.end());
  } else if (positionals[1] == "lint") {
    command = "lint";
    inv.program_path = positionals[0];
    args.assign(positionals.begin() + 2, positionals.end());
  } else {
    inv.program_path = positionals[0];
    command = positionals[1];
    args.assign(positionals.begin() + 2, positionals.end());
  }

  std::optional<RequestKind> kind = RequestKindFromName(command);
  if (!kind.has_value() || *kind == RequestKind::kLoad ||
      *kind == RequestKind::kStats) {
    return UsageError(StrCat("unknown command '", command, "'"));
  }
  req.kind = *kind;
  req.program_path = inv.program_path;
  const bool is_lint = req.kind == RequestKind::kLint;

  // Flags: one table, contexts enforced uniformly.
  for (const Flag& flag : flags) {
    if (flag.name == "--threads") {
      std::size_t value = 0;
      if (!ParseCount(flag.value, &value)) {
        return UsageError(StrCat("bad thread count '", flag.value, "'"));
      }
      req.threads = value;
    } else if (flag.name == "--max-candidates") {
      std::size_t value = 0;
      if (!ParseCount(flag.value, &value) || value == 0) {
        return UsageError(
            StrCat("bad candidate budget '", flag.value, "'"));
      }
      req.max_candidates = value;
    } else if (flag.name == "--engine-stats") {
      // Accepted everywhere; the dispatcher ignores it for lint (which
      // runs on a private engine), matching the historical behavior.
      req.engine_stats = true;
    } else if (flag.name == "--index") {
      if (is_lint) {
        return UsageError("flag '--index' is not valid for lint");
      }
      if (flag.value.empty()) {
        return UsageError("flag '--index' needs a file path");
      }
      inv.index_path = flag.value;
      inv.index_action = IndexAction::kQuery;
    } else if (flag.name == "--build-leaves" ||
               flag.name == "--build-entries") {
      return UsageError(
          StrCat("flag '", flag.name, "' is only valid for 'index build'"));
    } else if (flag.name == "--format") {
      if (!is_lint) {
        return UsageError(
            StrCat("flag '", flag.name, "' is only valid for lint"));
      }
      if (flag.value == "text") {
        req.lint.format = LintFormat::kText;
      } else if (flag.value == "json") {
        req.lint.format = LintFormat::kJson;
      } else if (flag.value == "sarif") {
        req.lint.format = LintFormat::kSarif;
      } else {
        return UsageError(StrCat("unknown format '", flag.value, "'"));
      }
    } else if (flag.name == "--no-semantic") {
      if (!is_lint) {
        return UsageError(
            StrCat("flag '", flag.name, "' is only valid for lint"));
      }
      req.lint.semantic = false;
    } else if (flag.name == "--fix") {
      if (!is_lint) {
        return UsageError(
            StrCat("flag '", flag.name, "' is only valid for lint"));
      }
      req.lint.fix = true;
      inv.fix_in_place = true;
    } else if (flag.name == "--fix-dry-run") {
      if (!is_lint) {
        return UsageError(
            StrCat("flag '", flag.name, "' is only valid for lint"));
      }
      req.lint.fix = true;
      req.lint.fix_dry_run = true;
    } else if (flag.name == "--baseline") {
      if (!is_lint) {
        return UsageError(
            StrCat("flag '", flag.name, "' is only valid for lint"));
      }
      inv.baseline_path = flag.value;
    } else if (flag.name == "--write-baseline") {
      if (!is_lint) {
        return UsageError(
            StrCat("flag '", flag.name, "' is only valid for lint"));
      }
      inv.write_baseline_path = flag.value;
      req.lint.want_baseline = true;
    } else if (flag.name == "--max-semantic-definitions") {
      if (!is_lint) {
        return UsageError(
            StrCat("flag '", flag.name, "' is only valid for lint"));
      }
      std::size_t value = 0;
      if (!ParseCount(flag.value, &value)) {
        return UsageError(
            StrCat("bad definition count '", flag.value, "'"));
      }
      req.lint.max_semantic_definitions = value;
    } else {
      return UsageError(StrCat("unknown flag '", flag.name, "'"));
    }
  }
  if (req.lint.fix && req.lint.fix_dry_run) inv.fix_in_place = false;

  // Positional arity per command.
  auto need = [&](std::size_t n) -> Status {
    if (args.size() != n) return UsageError();
    return Status::OK();
  };
  switch (req.kind) {
    case RequestKind::kList:
    case RequestKind::kLattice:
    case RequestKind::kReport:
    case RequestKind::kLint:
      VIEWCAP_RETURN_NOT_OK(need(0));
      break;
    case RequestKind::kExport:
    case RequestKind::kNonredundant:
    case RequestKind::kSimplify:
      VIEWCAP_RETURN_NOT_OK(need(1));
      req.view = args[0];
      break;
    case RequestKind::kMinimize:
      VIEWCAP_RETURN_NOT_OK(need(1));
      req.query = args[0];
      break;
    case RequestKind::kEquiv:
    case RequestKind::kCompose:
      VIEWCAP_RETURN_NOT_OK(need(2));
      req.view = args[0];
      req.other_view = args[1];
      break;
    case RequestKind::kAnswerable:
      VIEWCAP_RETURN_NOT_OK(need(2));
      req.view = args[0];
      req.query = args[1];
      break;
    case RequestKind::kCapacity: {
      VIEWCAP_RETURN_NOT_OK(need(2));
      req.view = args[0];
      std::size_t leaves = 0;
      if (!ParseCount(args[1], &leaves) || leaves == 0) {
        return UsageError(StrCat("bad leaf budget '", args[1], "'"));
      }
      req.max_leaves = leaves;
      break;
    }
    case RequestKind::kEval:
      VIEWCAP_RETURN_NOT_OK(need(3));
      req.view = args[0];
      req.query = args[1];
      inv.data_path = args[2];
      break;
    case RequestKind::kLoad:
    case RequestKind::kStats:
      return UsageError();  // Unreachable: filtered above.
  }
  return inv;
}

}  // namespace viewcap
