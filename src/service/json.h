// A minimal JSON value model for the service protocol (service/protocol.h).
//
// The repo's other JSON surfaces (lint --format=json, SARIF, bench
// baselines) only *emit* JSON; the daemon must also *parse* untrusted
// request lines, so this header adds a small self-contained value type
// with a recursive-descent parser (depth-capped against adversarial
// nesting) and a compact single-line writer. Object member order is
// preserved (vector of pairs, linear lookup) — protocol objects are tiny
// and deterministic output matters more than O(1) field access.
#ifndef VIEWCAP_SERVICE_JSON_H_
#define VIEWCAP_SERVICE_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/status.h"

namespace viewcap {

/// One JSON value: null, bool, number, string, array or object.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool value) {
    JsonValue v;
    v.type_ = Type::kBool;
    v.bool_ = value;
    return v;
  }
  static JsonValue Number(double value) {
    JsonValue v;
    v.type_ = Type::kNumber;
    v.number_ = value;
    return v;
  }
  static JsonValue Str(std::string value) {
    JsonValue v;
    v.type_ = Type::kString;
    v.string_ = std::move(value);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_bool() const { return type_ == Type::kBool; }

  /// Typed reads with fallbacks for absent/mistyped values.
  bool AsBool(bool fallback = false) const {
    return type_ == Type::kBool ? bool_ : fallback;
  }
  double AsNumber(double fallback = 0.0) const {
    return type_ == Type::kNumber ? number_ : fallback;
  }
  /// Truncating read for count-valued protocol fields; negatives clamp
  /// to `fallback`.
  std::size_t AsSize(std::size_t fallback = 0) const {
    if (type_ != Type::kNumber || number_ < 0) return fallback;
    return static_cast<std::size_t>(number_);
  }
  const std::string& AsString() const {
    static const std::string kEmpty;
    return type_ == Type::kString ? string_ : kEmpty;
  }

  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Object field append-or-overwrite. The value must be an object.
  void Set(std::string key, JsonValue value);

  /// Array append. The value must be an array.
  void Push(JsonValue value);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members_;  // kObject
};

/// Parses one JSON document. The whole text must be consumed (trailing
/// whitespace allowed). Fails with ParseError on malformed input or
/// nesting beyond an internal depth cap.
Result<JsonValue> ParseJson(std::string_view text);

/// Writes `value` compactly on one line (no spaces or newlines — the
/// line-delimited protocol frames messages by '\n'). Numbers that hold
/// exact integers print without a fraction; strings escape control
/// characters, quotes and backslashes.
std::string WriteJson(const JsonValue& value);

}  // namespace viewcap

#endif  // VIEWCAP_SERVICE_JSON_H_
