#include "service/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "base/strings.h"

namespace viewcap {
namespace {

/// Nesting cap for untrusted input: deep enough for any real request,
/// shallow enough that a hostile "[[[[..." line cannot overflow the stack.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    VIEWCAP_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(std::string_view message) const {
    return Status::ParseError(
        StrCat("json: ", message, " at offset ", pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      VIEWCAP_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue::Str(std::move(s));
    }
    if (ConsumeWord("true")) return JsonValue::Bool(true);
    if (ConsumeWord("false")) return JsonValue::Bool(false);
    if (ConsumeWord("null")) return JsonValue::Null();
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    return Error(StrCat("unexpected character '", c, "'"));
  }

  Result<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue object = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return object;
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      VIEWCAP_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      VIEWCAP_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      object.Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return object;
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue array = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return array;
    for (;;) {
      VIEWCAP_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      array.Push(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return array;
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          VIEWCAP_ASSIGN_OR_RETURN(unsigned code, ParseHex4());
          // Surrogate pair: combine into one code point.
          if (code >= 0xD800 && code <= 0xDBFF &&
              text_.substr(pos_, 2) == "\\u") {
            pos_ += 2;
            VIEWCAP_ASSIGN_OR_RETURN(unsigned low, ParseHex4());
            if (low >= 0xDC00 && low <= 0xDFFF) {
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else {
              return Error("invalid low surrogate");
            }
          }
          AppendUtf8(code, &out);
          break;
        }
        default:
          return Error("invalid escape sequence");
      }
    }
    return Error("unterminated string");
  }

  Result<unsigned> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape digit");
      }
    }
    return code;
  }

  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      *out += static_cast<char>(code);
    } else if (code < 0x800) {
      *out += static_cast<char>(0xC0 | (code >> 6));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      *out += static_cast<char>(0xE0 | (code >> 12));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (code >> 18));
      *out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Result<JsonValue> ParseNumber() {
    const std::size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (Consume('.')) {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string literal(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(literal.c_str(), &end);
    if (end == literal.c_str() || *end != '\0') {
      return Error(StrCat("malformed number '", literal, "'"));
    }
    return JsonValue::Number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void WriteEscaped(std::string_view s, std::string* out) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

void WriteValue(const JsonValue& value, std::string* out) {
  switch (value.type()) {
    case JsonValue::Type::kNull:
      *out += "null";
      break;
    case JsonValue::Type::kBool:
      *out += value.AsBool() ? "true" : "false";
      break;
    case JsonValue::Type::kNumber: {
      const double d = value.AsNumber();
      // Exact integers (the protocol's counters and ids) print without a
      // fraction so round trips stay textually stable.
      if (std::floor(d) == d && std::abs(d) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(d));
        *out += buf;
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", d);
        *out += buf;
      }
      break;
    }
    case JsonValue::Type::kString:
      WriteEscaped(value.AsString(), out);
      break;
    case JsonValue::Type::kArray: {
      *out += '[';
      bool first = true;
      for (const JsonValue& item : value.items()) {
        if (!first) *out += ',';
        first = false;
        WriteValue(item, out);
      }
      *out += ']';
      break;
    }
    case JsonValue::Type::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [key, member] : value.members()) {
        if (!first) *out += ',';
        first = false;
        WriteEscaped(key, out);
        *out += ':';
        WriteValue(member, out);
      }
      *out += '}';
      break;
    }
  }
}

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

void JsonValue::Set(std::string key, JsonValue value) {
  VIEWCAP_CHECK(type_ == Type::kObject);
  for (auto& [name, member] : members_) {
    if (name == key) {
      member = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

void JsonValue::Push(JsonValue value) {
  VIEWCAP_CHECK(type_ == Type::kArray);
  items_.push_back(std::move(value));
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

std::string WriteJson(const JsonValue& value) {
  std::string out;
  WriteValue(value, &out);
  return out;
}

}  // namespace viewcap
