#include "service/dispatcher.h"

#include <utility>

#include "algebra/printer.h"
#include "base/strings.h"
#include "core/report.h"
#include "lint/baseline.h"
#include "lint/fixits.h"
#include "lint/linter.h"
#include "lint/sarif.h"

namespace viewcap {

namespace {

/// Marks `resp` failed with the CLI error exit code. The output
/// accumulated so far is kept (the CLI prints stdout even on failure).
void Fail(Response* resp, Status status) {
  resp->status = std::move(status);
  resp->exit_code = 1;
}

}  // namespace

std::string_view RequestKindName(RequestKind kind) {
  switch (kind) {
    case RequestKind::kList: return "list";
    case RequestKind::kExport: return "export";
    case RequestKind::kEquiv: return "equiv";
    case RequestKind::kAnswerable: return "answerable";
    case RequestKind::kNonredundant: return "nonredundant";
    case RequestKind::kSimplify: return "simplify";
    case RequestKind::kLattice: return "lattice";
    case RequestKind::kMinimize: return "minimize";
    case RequestKind::kCapacity: return "capacity";
    case RequestKind::kEval: return "eval";
    case RequestKind::kCompose: return "compose";
    case RequestKind::kReport: return "report";
    case RequestKind::kLint: return "lint";
    case RequestKind::kLoad: return "load";
    case RequestKind::kStats: return "stats";
  }
  return "unknown";
}

std::optional<RequestKind> RequestKindFromName(std::string_view name) {
  static constexpr struct {
    std::string_view name;
    RequestKind kind;
  } kNames[] = {
      {"list", RequestKind::kList},
      {"export", RequestKind::kExport},
      {"equiv", RequestKind::kEquiv},
      {"answerable", RequestKind::kAnswerable},
      {"membership", RequestKind::kAnswerable},
      {"nonredundant", RequestKind::kNonredundant},
      {"simplify", RequestKind::kSimplify},
      {"lattice", RequestKind::kLattice},
      {"minimize", RequestKind::kMinimize},
      {"capacity", RequestKind::kCapacity},
      {"eval", RequestKind::kEval},
      {"compose", RequestKind::kCompose},
      {"report", RequestKind::kReport},
      {"analyze", RequestKind::kReport},
      {"lint", RequestKind::kLint},
      {"load", RequestKind::kLoad},
      {"stats", RequestKind::kStats},
  };
  for (const auto& entry : kNames) {
    if (entry.name == name) return entry.kind;
  }
  return std::nullopt;
}

SearchLimits Dispatcher::LimitsFor(const Request& request) const {
  SearchLimits limits = workspace_->default_limits();
  if (request.threads.has_value()) limits.threads = *request.threads;
  if (request.max_candidates > 0) {
    limits.max_candidates = request.max_candidates;
  }
  return limits;
}

Response Dispatcher::Handle(const Request& request) {
  workspace_->CountRequest();
  if (request.kind == RequestKind::kLint) return HandleLint(request);

  Response resp;
  const SearchLimits limits = LimitsFor(request);
  std::string report;
  switch (request.kind) {
    case RequestKind::kLoad: {
      Status st = workspace_->Load(request.program_text);
      if (!st.ok()) Fail(&resp, std::move(st));
      break;
    }
    case RequestKind::kList:
      workspace_->WithShared([&](Analyzer& a) {
        for (const std::string& name : a.ViewNames()) {
          auto view = a.GetView(name);
          resp.output += (*view)->ToString();
        }
        return 0;
      });
      break;
    case RequestKind::kExport:
      workspace_->WithShared([&](Analyzer& a) {
        auto result = a.ExportView(request.view);
        if (!result.ok()) {
          Fail(&resp, result.status());
        } else {
          resp.output = *result;
        }
        return 0;
      });
      break;
    case RequestKind::kEquiv:
      workspace_->WithShared([&](Analyzer& a) {
        auto result =
            a.CheckEquivalence(request.view, request.other_view, limits,
                               &report);
        if (!result.ok()) {
          Fail(&resp, result.status());
        } else {
          resp.output = report;
          resp.verdict = result->equivalent;
          resp.inconclusive = result->inconclusive;
          resp.exit_code = result->equivalent ? 0 : 3;
        }
        return 0;
      });
      break;
    case RequestKind::kLattice:
      workspace_->WithShared([&](Analyzer& a) {
        auto result = a.CompareAllViews(limits, &report);
        if (!result.ok()) {
          Fail(&resp, result.status());
        } else {
          resp.output = report;
        }
        return 0;
      });
      break;
    case RequestKind::kAnswerable:
      workspace_->WithExclusive([&](Analyzer& a) {
        auto result =
            a.CheckAnswerable(request.view, request.query, limits, &report);
        if (!result.ok()) {
          Fail(&resp, result.status());
        } else {
          resp.output = report;
          resp.verdict = result->member;
          resp.inconclusive = !result->member && result->budget_exhausted;
          if (result->member && result->witness != nullptr) {
            resp.witness = ToString(*result->witness, a.catalog());
          }
          resp.exit_code = result->member ? 0 : 3;
        }
        return 0;
      });
      break;
    case RequestKind::kNonredundant:
      workspace_->WithExclusive([&](Analyzer& a) {
        auto result = a.EliminateRedundancy(request.view, limits, &report);
        if (!result.ok()) {
          Fail(&resp, result.status());
        } else {
          resp.output = report;
        }
        return 0;
      });
      break;
    case RequestKind::kSimplify:
      workspace_->WithExclusive([&](Analyzer& a) {
        auto result = a.SimplifyView(request.view, limits, &report);
        if (!result.ok()) {
          Fail(&resp, result.status());
        } else {
          resp.output = report;
        }
        return 0;
      });
      break;
    case RequestKind::kMinimize:
      workspace_->WithExclusive([&](Analyzer& a) {
        auto result = a.MinimizeQuery(request.query, limits, &report);
        if (!result.ok()) {
          Fail(&resp, result.status());
        } else {
          resp.output = report;
        }
        return 0;
      });
      break;
    case RequestKind::kCapacity:
      workspace_->WithExclusive([&](Analyzer& a) {
        auto result = a.EnumerateViewCapacity(request.view,
                                              request.max_leaves, limits,
                                              256, &report);
        if (!result.ok()) {
          Fail(&resp, result.status());
        } else {
          resp.output = report;
        }
        return 0;
      });
      break;
    case RequestKind::kEval:
      workspace_->WithExclusive([&](Analyzer& a) {
        auto result = a.EvaluateViewQuery(request.view, request.query,
                                          request.data_text, &report);
        if (!result.ok()) {
          Fail(&resp, result.status());
        } else {
          resp.output = report;
        }
        return 0;
      });
      break;
    case RequestKind::kCompose:
      workspace_->WithExclusive([&](Analyzer& a) {
        auto result =
            a.ComposeViews(request.view, request.other_view, &report);
        if (!result.ok()) {
          Fail(&resp, result.status());
        } else {
          resp.output = report;
        }
        return 0;
      });
      break;
    case RequestKind::kReport:
      workspace_->WithExclusive([&](Analyzer& a) {
        // RenderReport drives the analyzer's own methods, which read its
        // member limits; swapping them is safe here because the exclusive
        // lock is held for the whole render.
        const SearchLimits saved = a.limits();
        a.set_limits(limits);
        auto result = RenderReport(a);
        a.set_limits(saved);
        if (!result.ok()) {
          Fail(&resp, result.status());
        } else {
          resp.output = *result;
        }
        return 0;
      });
      break;
    case RequestKind::kStats:
      resp.engine_stats = workspace_->EngineStatsSnapshot();
      resp.has_engine_stats = true;
      resp.output = RenderEngineStats(resp.engine_stats);
      if (auto index = workspace_->IndexStatsSnapshot()) {
        resp.index_stats = *index;
        resp.has_index_stats = true;
        resp.output += StrCat("\n", RenderIndexStats(resp.index_stats));
      }
      break;
    case RequestKind::kLint:
      break;  // Handled above.
  }

  // The historical --engine-stats contract: the snapshot is rendered
  // after the command output (even for failed commands), so in a one-shot
  // run it describes exactly the command that just executed. kStats IS
  // the snapshot, so it never double-appends.
  if (request.engine_stats && request.kind != RequestKind::kStats) {
    resp.engine_stats = workspace_->EngineStatsSnapshot();
    resp.has_engine_stats = true;
    resp.output += StrCat("\n", RenderEngineStats(resp.engine_stats));
    if (auto index = workspace_->IndexStatsSnapshot()) {
      resp.index_stats = *index;
      resp.has_index_stats = true;
      resp.output += StrCat("\n", RenderIndexStats(resp.index_stats));
    }
  }
  return resp;
}

Response Dispatcher::HandleLint(const Request& request) const {
  Response resp;
  LintOptions options;
  options.semantic = request.lint.semantic;
  options.limits = LimitsFor(request);
  options.max_semantic_definitions = request.lint.max_semantic_definitions;

  std::string text = request.program_text;
  if (request.lint.fix || request.lint.fix_dry_run) {
    FixOutcome outcome = FixProgram(text, options);
    resp.edits_applied = outcome.edits_applied;
    resp.fix_rounds = outcome.rounds;
    resp.fix_clean = outcome.clean;
    resp.fixed_text = outcome.text;
    if (request.lint.fix_dry_run) {
      // Dry run: the fixed program IS the output; the file stays
      // untouched and no findings are rendered.
      resp.output = outcome.text;
      resp.note = StrCat("viewcap_cli: ", outcome.edits_applied, " edit",
                         outcome.edits_applied == 1 ? "" : "s", " in ",
                         outcome.rounds, " round",
                         outcome.rounds == 1 ? "" : "s", " (dry run)");
      resp.exit_code = outcome.clean ? 0 : 1;
      return resp;
    }
    resp.note = StrCat("viewcap_cli: applied ", outcome.edits_applied,
                       " edit", outcome.edits_applied == 1 ? "" : "s",
                       " in ", outcome.rounds, " round",
                       outcome.rounds == 1 ? "" : "s");
    text = outcome.text;  // Report the remaining (unfixable) findings.
  }

  Linter linter(options);
  LintResult result = linter.Run(text);
  if (request.lint.want_baseline) {
    resp.baseline_text = WriteBaseline(result.diagnostics);
  }
  if (request.lint.have_baseline) {
    std::size_t suppressed = 0;
    result.diagnostics =
        FilterBaseline(std::move(result.diagnostics),
                       ParseBaseline(request.lint.baseline_text),
                       &suppressed);
    result.suppressed += suppressed;
  }
  const std::string& path = request.program_path;
  switch (request.lint.format) {
    case LintFormat::kJson:
      resp.output = RenderJson(result.diagnostics, path);
      break;
    case LintFormat::kSarif:
      resp.output = RenderSarif(result.diagnostics, path);
      break;
    case LintFormat::kText:
      if (result.diagnostics.empty()) {
        resp.output = StrCat(path, ": no problems found");
        if (result.suppressed > 0) {
          resp.output += StrCat(" (", result.suppressed, " suppressed)");
        }
        resp.output += "\n";
      } else {
        resp.output = RenderText(result.diagnostics, path);
        if (result.suppressed > 0) {
          resp.output += StrCat(result.suppressed, " suppressed.\n");
        }
      }
      break;
  }
  resp.lint_errors = result.Count(Severity::kError);
  resp.lint_warnings = result.Count(Severity::kWarning);
  resp.lint_notes = result.Count(Severity::kNote);
  resp.lint_suppressed = result.suppressed;
  if (resp.lint_errors > 0) {
    resp.exit_code = 4;
  } else if (resp.lint_warnings > 0) {
    resp.exit_code = 3;
  }
  return resp;
}

}  // namespace viewcap
