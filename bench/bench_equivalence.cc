// B5: view equivalence decision cost (Theorem 2.4.12) vs. view size.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "views/equivalence.h"

namespace viewcap {
namespace bench {
namespace {

// Equivalent pair: the link view against a re-declared copy of itself.
void BM_EquivalentViews(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(links);
  View v = MakeLinkView(*schema, "lv");
  View w = MakeLinkView(*schema, "lw");
  for (auto _ : state) {
    EquivalenceResult eq = AreEquivalent(v, w).value();
    if (!eq.equivalent) state.SkipWithError("expected equivalent");
    benchmark::DoNotOptimize(eq);
  }
}
BENCHMARK(BM_EquivalentViews)->DenseRange(2, 6)->Unit(benchmark::kMillisecond);

// The same question against a shared engine: the legacy overload above
// builds a fresh engine per call (cold), while here every iteration after
// the first is answered from the verdict cache — the repeated-analysis
// path the analyzer and linter run on.
void BM_EquivalentViewsWarmEngine(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(links);
  View v = MakeLinkView(*schema, "lv");
  View w = MakeLinkView(*schema, "lw");
  Engine engine(&schema->catalog);
  for (auto _ : state) {
    EquivalenceResult eq = AreEquivalent(engine, v, w).value();
    if (!eq.equivalent) state.SkipWithError("expected equivalent");
    benchmark::DoNotOptimize(eq);
  }
  EngineStats stats = engine.Stats();
  state.counters["verdict_hits"] = static_cast<double>(stats.verdict.hits());
}
BENCHMARK(BM_EquivalentViewsWarmEngine)
    ->DenseRange(2, 6)
    ->Unit(benchmark::kMillisecond);

// Inequivalent pair: link view strictly dominates the join view, so the
// join-view side of the test fails after an exhaustive search.
void BM_InequivalentViews(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(links);
  View links_view = MakeLinkView(*schema, "lv");
  View join_view = MakeJoinView(*schema, "jv");
  for (auto _ : state) {
    EquivalenceResult eq = AreEquivalent(links_view, join_view).value();
    if (eq.equivalent) state.SkipWithError("expected inequivalent");
    benchmark::DoNotOptimize(eq);
  }
}
BENCHMARK(BM_InequivalentViews)->DenseRange(2, 4)->Unit(benchmark::kMillisecond);

// Parallel series: the inequivalent pair (the exhaustive direction
// dominates the cost) across thread counts, cold engine per iteration
// (arg 0 = links, arg 1 = SearchLimits::threads).
void BM_InequivalentViewsParallel(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  SearchLimits limits;
  limits.threads = static_cast<std::size_t>(state.range(1));
  auto schema = MakeChain(links);
  View links_view = MakeLinkView(*schema, "lv");
  View join_view = MakeJoinView(*schema, "jv");
  for (auto _ : state) {
    EquivalenceResult eq =
        AreEquivalent(links_view, join_view, limits).value();
    if (eq.equivalent) state.SkipWithError("expected inequivalent");
    benchmark::DoNotOptimize(eq);
  }
  state.counters["threads"] = static_cast<double>(limits.threads);
}
BENCHMARK(BM_InequivalentViewsParallel)
    ->Args({3, 1})->Args({3, 2})->Args({3, 4})->Args({3, 8})
    ->Args({4, 1})->Args({4, 2})->Args({4, 4})->Args({4, 8})
    ->Unit(benchmark::kMillisecond);

// Warm variant: shared engine, so iterations after the first answer from
// the verdict cache — measures the memoized path's insensitivity to the
// thread knob (the knob is not part of the verdict key).
void BM_InequivalentViewsParallelWarmEngine(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  SearchLimits limits;
  limits.threads = static_cast<std::size_t>(state.range(1));
  auto schema = MakeChain(links);
  View links_view = MakeLinkView(*schema, "lv");
  View join_view = MakeJoinView(*schema, "jv");
  Engine engine(&schema->catalog);
  for (auto _ : state) {
    EquivalenceResult eq =
        AreEquivalent(engine, links_view, join_view, limits).value();
    if (eq.equivalent) state.SkipWithError("expected inequivalent");
    benchmark::DoNotOptimize(eq);
  }
  EngineStats stats = engine.Stats();
  state.counters["verdict_hits"] = static_cast<double>(stats.verdict.hits());
  state.counters["threads"] = static_cast<double>(limits.threads);
}
BENCHMARK(BM_InequivalentViewsParallelWarmEngine)
    ->Args({3, 1})->Args({3, 2})->Args({3, 4})->Args({3, 8})
    ->Unit(benchmark::kMillisecond);

// One-sided dominance: the cheap direction (every join-view query is
// answerable from the links).
void BM_DominancePositive(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(links);
  View links_view = MakeLinkView(*schema, "lv");
  View join_view = MakeJoinView(*schema, "jv");
  for (auto _ : state) {
    DominanceResult dom = Dominates(links_view, join_view).value();
    if (!dom.dominates) state.SkipWithError("expected dominance");
    benchmark::DoNotOptimize(dom);
  }
}
BENCHMARK(BM_DominancePositive)->DenseRange(2, 6)->Unit(benchmark::kMillisecond);

// The Example 3.1.5 pair (single-relation schema: the hardest tag regime,
// every row matches every row).
void BM_Example315(benchmark::State& state) {
  Catalog catalog;
  AttrSet u = catalog.MakeScheme({"A", "B", "C"});
  RelId r = catalog.AddRelation("r", u).value();
  DbSchema base(catalog, {r});
  ExprPtr pab = Expr::MustProject(catalog.MakeScheme({"A", "B"}),
                                  Expr::Rel(catalog, r));
  ExprPtr pbc = Expr::MustProject(catalog.MakeScheme({"B", "C"}),
                                  Expr::Rel(catalog, r));
  RelId l = catalog.MintRelation("l", catalog.MakeScheme({"A", "B", "C"}));
  RelId l1 = catalog.MintRelation("l1", pab->trs());
  RelId l2 = catalog.MintRelation("l2", pbc->trs());
  View v = View::Create(&catalog, base, {{l, Expr::MustJoin2(pab, pbc)}},
                        "V")
               .value();
  View w =
      View::Create(&catalog, base, {{l1, pab}, {l2, pbc}}, "W").value();
  for (auto _ : state) {
    EquivalenceResult eq = AreEquivalent(v, w).value();
    if (!eq.equivalent) state.SkipWithError("expected equivalent");
    benchmark::DoNotOptimize(eq);
  }
}
BENCHMARK(BM_Example315)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace viewcap
