// B3: template substitution T -> beta (Section 2.2) cost and output size
// vs. the construction-level template's rows and the assigned templates'
// sizes, plus a replay of the Figure 1 substitution.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "tableau/build.h"
#include "tableau/substitution.h"

namespace viewcap {
namespace bench {
namespace {

// Level template: a j-fold self-join of one handle whose assigned template
// is a w-link chain join. Output has j * w rows before dedup.
void BM_Substitute(benchmark::State& state) {
  const std::size_t level_rows = static_cast<std::size_t>(state.range(0));
  const std::size_t assigned_links = static_cast<std::size_t>(state.range(1));
  auto schema = MakeChain(assigned_links);
  SymbolPool pool;
  Tableau assigned =
      BuildTableau(schema->catalog, schema->universe, *ChainJoin(*schema),
                   pool)
          .value();
  RelId handle = schema->catalog.MintRelation("h", assigned.Trs());
  TemplateAssignment beta{{handle, assigned}};

  // Level: join of `level_rows` projected copies of the handle (distinct
  // rows, each spawning one block).
  ExprPtr handle_expr = Expr::Rel(schema->catalog, handle);
  std::vector<ExprPtr> parts;
  AttrSet first_attr{schema->attrs[0]};
  parts.push_back(handle_expr);
  for (std::size_t i = 1; i < level_rows; ++i) {
    parts.push_back(Expr::MustProject(first_attr, handle_expr));
  }
  ExprPtr level_expr =
      parts.size() == 1 ? parts[0] : Expr::MustJoin(std::move(parts));
  Tableau level =
      BuildTableau(schema->catalog, schema->universe, *level_expr, pool)
          .value();

  std::size_t out_rows = 0;
  for (auto _ : state) {
    SubstitutionOutcome outcome =
        Substitute(schema->catalog, level, beta, pool).value();
    out_rows = outcome.result.size();
    benchmark::DoNotOptimize(outcome);
  }
  state.counters["level_rows"] = static_cast<double>(level.size());
  state.counters["out_rows"] = static_cast<double>(out_rows);
}
BENCHMARK(BM_Substitute)
    ->ArgsProduct({{1, 2, 4, 8}, {2, 4, 8}});

// Figure 1 replay: the exact substitution of Example 2.2.2.
void BM_Figure1Substitution(benchmark::State& state) {
  Catalog catalog;
  AttrSet u = catalog.MakeScheme({"A", "B", "C"});
  AttrSet ab = catalog.MakeScheme({"A", "B"});
  AttrId a = catalog.FindAttribute("A").value();
  AttrId b = catalog.FindAttribute("B").value();
  AttrId c = catalog.FindAttribute("C").value();
  RelId eta1 = catalog.AddRelation("eta1", ab).value();
  RelId eta2 = catalog.AddRelation("eta2", u).value();
  RelId eta3 = catalog.AddRelation("eta3", u).value();
  RelId eta4 = catalog.AddRelation("eta4", u).value();
  auto d = [](AttrId attr) { return Symbol::Distinguished(attr); };
  auto n = [](AttrId attr, std::uint32_t i) {
    return Symbol::Nondistinguished(attr, i);
  };
  Tableau t = Tableau::MustCreate(
      catalog, u,
      {TaggedTuple{eta1, Tuple(u, {d(a), n(b, 1), n(c, 1)})},
       TaggedTuple{eta2, Tuple(u, {n(a, 1), d(b), n(c, 2)})},
       TaggedTuple{eta2, Tuple(u, {n(a, 1), n(b, 2), d(c)})}});
  Tableau s1 = Tableau::MustCreate(
      catalog, u,
      {TaggedTuple{eta3, Tuple(u, {n(a, 3), d(b), n(c, 3)})},
       TaggedTuple{eta3, Tuple(u, {d(a), n(b, 3), n(c, 3)})}});
  Tableau s2 = Tableau::MustCreate(
      catalog, u,
      {TaggedTuple{eta4, Tuple(u, {d(a), d(b), n(c, 4)})},
       TaggedTuple{eta4, Tuple(u, {n(a, 4), n(b, 4), d(c)})}});
  TemplateAssignment beta{{eta1, s1}, {eta2, s2}};
  SymbolPool pool;
  for (auto _ : state) {
    SubstitutionOutcome outcome =
        Substitute(catalog, t, beta, pool).value();
    if (outcome.result.size() != 6) state.SkipWithError("wrong row count");
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_Figure1Substitution);

}  // namespace
}  // namespace bench
}  // namespace viewcap
