// B11: the persistent capacity index — offline build cost vs online
// lookup speed (see DESIGN.md, "Persistent capacity index").
//
// Workload: the gapped-chain family. The base is the L-link chain
// r1(A0,A1) ... rL(A(L-1),AL); view Full publishes the endpoint
// projection of the whole join, view Gappy publishes every link except
// the middle one. "Is Full's endpoint query answerable from Gappy?" is a
// negative membership verdict, and negatives are the expensive case: the
// closure search must exhaust every candidate up to the leaf budget
// before it can say no (774 ms at L=4, tens of seconds at L=5 where it
// runs into the candidate budget). The index build pays that exhaustive
// search once — the cross-view sweep stores each view's definitions
// probed against every other view — and a fresh process then serves the
// same verdict out of the mmap'd file in well under a millisecond.
//
// The comparison is fresh-process against fresh-process:
// BM_IndexColdMembership reloads the program and recomputes the verdict
// from scratch (one-shot `viewcap_cli` semantics); BM_IndexedMembership
// reloads the program, attaches the prebuilt index (mmap + full
// validation) and serves the stored verdict. Both render bit-identical
// output; the cold/indexed ratio per chain length is the figure that
// justifies the build/query split (>= 10x from L=3, >1000x at L=4 —
// see bench/BENCH_index.json).
//
// BM_IndexBuild is the offline half (saturation sweep + the exhaustive
// cross-view probes + serialization); BM_IndexAttach isolates the fixed
// open-and-validate cost every indexed process pays once.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>

#include "bench/bench_util.h"
#include "index/index_reader.h"
#include "index/index_writer.h"
#include "service/dispatcher.h"

namespace viewcap {
namespace bench {
namespace {

/// The endpoint projection of the full chain join.
std::string EndpointQuery(std::size_t links) {
  std::string join = "r1";
  for (std::size_t i = 2; i <= links; ++i) join += StrCat(" * r", i);
  return StrCat("pi{A0,A", links, "}(", join, ")");
}

/// The gapped-chain program: Full = the endpoint projection, Gappy = all
/// links except the middle one (so the endpoint is NOT answerable from
/// Gappy, but both views still share the full attribute universe).
std::string GappedChainProgram(std::size_t links) {
  std::string schema = "schema { ";
  for (std::size_t i = 1; i <= links; ++i) {
    schema += StrCat("r", i, "(A", i - 1, ", A", i, "); ");
  }
  const std::size_t gap = (links + 1) / 2;
  std::string gappy = "view Gappy { ";
  for (std::size_t i = 1; i <= links; ++i) {
    if (i == gap) continue;
    gappy += StrCat("lk", i, " := r", i, "; ");
  }
  return StrCat(schema, "}\nview Full { j := ", EndpointQuery(links),
                "; }\n", gappy, "}\n");
}

/// The expensive probe: a negative verdict, exhaustively searched live.
Request NegativeMembershipRequest(std::size_t links) {
  Request request;
  request.kind = RequestKind::kAnswerable;
  request.view = "Gappy";
  request.query = EndpointQuery(links);
  return request;
}

/// Index file for GappedChainProgram(links), built once per process and
/// shared by every iteration of the lookup benchmarks.
const std::string& PrebuiltIndex(std::size_t links) {
  static std::map<std::size_t, std::string>* paths =
      new std::map<std::size_t, std::string>();
  auto it = paths->find(links);
  if (it != paths->end()) return it->second;
  std::string path =
      (std::filesystem::temp_directory_path() /
       StrCat("bench_index_", links, ".vcidx"))
          .string();
  Analyzer analyzer;
  if (!analyzer.Load(GappedChainProgram(links)).ok() ||
      !BuildIndexFile(analyzer, path, IndexBuildOptions{}).ok()) {
    std::fprintf(stderr, "bench_index: prebuild failed for links=%zu\n",
                 links);
    std::abort();
  }
  return paths->emplace(links, std::move(path)).first->second;
}

/// Offline build from a cold analyzer: saturation sweep, the exhaustive
/// cross-view membership/dominance probes, serialization, publish.
void BM_IndexBuild(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  const std::string program = GappedChainProgram(links);
  const std::string path = (std::filesystem::temp_directory_path() /
                            "bench_index_build.vcidx")
                               .string();
  for (auto _ : state) {
    Analyzer analyzer;
    if (!analyzer.Load(program).ok()) {
      state.SkipWithError("load failed");
      break;
    }
    auto stats = BuildIndexFile(analyzer, path, IndexBuildOptions{});
    if (!stats.ok()) {
      state.SkipWithError("build failed");
      break;
    }
    benchmark::DoNotOptimize(stats);
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_IndexBuild)->DenseRange(3, 4)->Unit(benchmark::kMillisecond);

/// Fresh-process cold recompute: reload the program and run the full
/// exhaustive closure search for the negative endpoint membership.
void BM_IndexColdMembership(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  const std::string program = GappedChainProgram(links);
  const Request request = NegativeMembershipRequest(links);
  for (auto _ : state) {
    Workspace workspace;
    if (!workspace.Load(program).ok()) {
      state.SkipWithError("load failed");
      break;
    }
    Dispatcher dispatcher(&workspace);
    Response response = dispatcher.Handle(request);
    if (response.verdict != false) {
      state.SkipWithError("expected non-member");
    }
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(BM_IndexColdMembership)
    ->DenseRange(3, 4)
    ->Unit(benchmark::kMillisecond);

/// Fresh-process indexed lookup: reload the program, attach the prebuilt
/// index (mmap + validation), and serve the same verdict from the file.
/// Bit-identical output to the cold run; the cold/indexed ratio is the
/// whole point of the build/query split.
void BM_IndexedMembership(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  const std::string program = GappedChainProgram(links);
  const std::string& path = PrebuiltIndex(links);
  const Request request = NegativeMembershipRequest(links);
  for (auto _ : state) {
    Workspace workspace;
    if (!workspace.Load(program).ok() ||
        !workspace.AttachIndex(path).ok()) {
      state.SkipWithError("load/attach failed");
      break;
    }
    Dispatcher dispatcher(&workspace);
    Response response = dispatcher.Handle(request);
    if (response.verdict != false) {
      state.SkipWithError("expected non-member");
    }
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(BM_IndexedMembership)
    ->DenseRange(3, 4)
    ->Unit(benchmark::kMillisecond);

/// The fixed per-process cost of opening an index: mmap, header and
/// section checksums, eager class decode, set table build.
void BM_IndexAttach(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  const std::string program = GappedChainProgram(links);
  const std::string& path = PrebuiltIndex(links);
  for (auto _ : state) {
    Workspace workspace;
    if (!workspace.Load(program).ok()) {
      state.SkipWithError("load failed");
      break;
    }
    if (!workspace.AttachIndex(path).ok()) {
      state.SkipWithError("attach failed");
      break;
    }
    benchmark::DoNotOptimize(workspace);
  }
}
BENCHMARK(BM_IndexAttach)->DenseRange(3, 4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace viewcap
