// B2: template reduction (Proposition 2.4.4) vs. injected redundancy.
//
// Workload: a k-link chain-join template joined with m projected
// (semijoin-subsumed) copies; reduction must strip all m copies.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "tableau/build.h"
#include "tableau/reduce.h"

namespace viewcap {
namespace bench {
namespace {

Tableau MakeRedundant(ChainSchema& schema, std::size_t copies) {
  SymbolPool pool;
  Tableau core =
      BuildTableau(schema.catalog, schema.universe, *ChainJoin(schema), pool)
          .value();
  Tableau result = core;
  AttrSet half{schema.attrs[0], schema.attrs[1]};
  for (std::size_t i = 0; i < copies; ++i) {
    Tableau extra = ProjectTableau(schema.catalog, core, half, pool).value();
    result = JoinTableaux(schema.catalog, result, extra, pool).value();
  }
  return result;
}

void BM_ReduceRedundantCopies(benchmark::State& state) {
  auto schema = MakeChain(4);
  Tableau bloated =
      MakeRedundant(*schema, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    Tableau reduced = Reduce(schema->catalog, bloated);
    benchmark::DoNotOptimize(reduced);
  }
  state.counters["rows_in"] = static_cast<double>(bloated.size());
}
BENCHMARK(BM_ReduceRedundantCopies)->DenseRange(0, 8, 2);

void BM_ReduceAlreadyReduced(benchmark::State& state) {
  auto schema = MakeChain(static_cast<std::size_t>(state.range(0)));
  SymbolPool pool;
  Tableau core =
      BuildTableau(schema->catalog, schema->universe, *ChainJoin(*schema),
                   pool)
          .value();
  for (auto _ : state) {
    Tableau reduced = Reduce(schema->catalog, core);
    benchmark::DoNotOptimize(reduced);
  }
}
BENCHMARK(BM_ReduceAlreadyReduced)->DenseRange(2, 10, 2);

void BM_IsReduced(benchmark::State& state) {
  auto schema = MakeChain(4);
  Tableau bloated =
      MakeRedundant(*schema, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    bool reduced = IsReduced(schema->catalog, bloated);
    benchmark::DoNotOptimize(reduced);
  }
}
BENCHMARK(BM_IsReduced)->DenseRange(0, 4, 2);

}  // namespace
}  // namespace bench
}  // namespace viewcap
