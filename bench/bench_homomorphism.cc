// B1: homomorphism search cost (Proposition 2.4.1) vs. template size.
//
// Workloads: chain-join templates. "Hit" maps a k-row chain into a 2k-row
// template containing two interleaved copies; "Miss" maps into a template
// whose last link was severed, forcing the search to exhaust candidates.
//
// The primary entry points (BM_HomomorphismHit/Miss, BM_EquivalenceCheck)
// now run on the flat SoA kernel; the *Legacy twins pin the retired
// pointer-walking HomSearch for a direct series-vs-series comparison, and
// the Kernel/Wave series isolate the engine's steady state (templates
// lowered once, scratch reused across calls).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "tableau/build.h"
#include "tableau/hom_kernel.h"
#include "tableau/homomorphism.h"
#include "tableau/soa.h"

namespace viewcap {
namespace bench {
namespace {

void BM_HomomorphismHit(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(links);
  SymbolPool pool;
  Tableau from =
      BuildTableau(schema->catalog, schema->universe, *ChainJoin(*schema),
                   pool)
          .value();
  // Two disjoint copies of the chain: every row has 2 candidates.
  Tableau to =
      JoinTableaux(schema->catalog, from,
                   BuildTableau(schema->catalog, schema->universe,
                                *ChainJoin(*schema), pool)
                       .value(),
                   pool)
          .value();
  for (auto _ : state) {
    auto hom = FindHomomorphism(schema->catalog, from, to);
    benchmark::DoNotOptimize(hom);
  }
  state.counters["rows_from"] = static_cast<double>(from.size());
  state.counters["rows_to"] = static_cast<double>(to.size());
}
BENCHMARK(BM_HomomorphismHit)->DenseRange(2, 12, 2);

void BM_HomomorphismMiss(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(links);
  SymbolPool pool;
  Tableau from =
      BuildTableau(schema->catalog, schema->universe, *ChainJoin(*schema),
                   pool)
          .value();
  // Target: the chain with its last link projected away — 0_{Xn} is gone,
  // so no homomorphism exists.
  AttrSet kept = from.Trs();
  kept = kept.Difference(AttrSet{schema->attrs.back()});
  Tableau to =
      ProjectTableau(schema->catalog, from, kept, pool).value();
  for (auto _ : state) {
    bool hom = HasHomomorphism(schema->catalog, from, to);
    benchmark::DoNotOptimize(hom);
  }
}
BENCHMARK(BM_HomomorphismMiss)->DenseRange(2, 12, 2);

void BM_EquivalenceCheck(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(links);
  SymbolPool pool;
  Tableau a =
      BuildTableau(schema->catalog, schema->universe, *ChainJoin(*schema),
                   pool)
          .value();
  // An equivalent but syntactically bloated realization: the join with a
  // redundant projected copy.
  AttrSet half{schema->attrs[0], schema->attrs[1]};
  Tableau extra = ProjectTableau(schema->catalog, a, half, pool).value();
  Tableau b = JoinTableaux(schema->catalog, a, extra, pool).value();
  for (auto _ : state) {
    bool eq = EquivalentTableaux(schema->catalog, a, b);
    benchmark::DoNotOptimize(eq);
  }
}
BENCHMARK(BM_EquivalenceCheck)->DenseRange(2, 12, 2);

// --- Legacy oracle twins: the same workloads on the retired pointer-
// walking HomSearch, for the SoA-vs-legacy series. ---

void BM_HomomorphismHitLegacy(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(links);
  SymbolPool pool;
  Tableau from =
      BuildTableau(schema->catalog, schema->universe, *ChainJoin(*schema),
                   pool)
          .value();
  Tableau to =
      JoinTableaux(schema->catalog, from,
                   BuildTableau(schema->catalog, schema->universe,
                                *ChainJoin(*schema), pool)
                       .value(),
                   pool)
          .value();
  for (auto _ : state) {
    auto hom = legacy::FindHomomorphism(schema->catalog, from, to);
    benchmark::DoNotOptimize(hom);
  }
}
BENCHMARK(BM_HomomorphismHitLegacy)->DenseRange(2, 12, 2);

void BM_HomomorphismMissLegacy(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(links);
  SymbolPool pool;
  Tableau from =
      BuildTableau(schema->catalog, schema->universe, *ChainJoin(*schema),
                   pool)
          .value();
  AttrSet kept = from.Trs();
  kept = kept.Difference(AttrSet{schema->attrs.back()});
  Tableau to = ProjectTableau(schema->catalog, from, kept, pool).value();
  for (auto _ : state) {
    bool hom = legacy::HasHomomorphism(schema->catalog, from, to);
    benchmark::DoNotOptimize(hom);
  }
}
BENCHMARK(BM_HomomorphismMissLegacy)->DenseRange(2, 12, 2);

void BM_EquivalenceCheckLegacy(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(links);
  SymbolPool pool;
  Tableau a =
      BuildTableau(schema->catalog, schema->universe, *ChainJoin(*schema),
                   pool)
          .value();
  AttrSet half{schema->attrs[0], schema->attrs[1]};
  Tableau extra = ProjectTableau(schema->catalog, a, half, pool).value();
  Tableau b = JoinTableaux(schema->catalog, a, extra, pool).value();
  for (auto _ : state) {
    bool eq = legacy::EquivalentTableaux(schema->catalog, a, b);
    benchmark::DoNotOptimize(eq);
  }
}
BENCHMARK(BM_EquivalenceCheckLegacy)->DenseRange(2, 12, 2);

// --- Kernel steady state: what an engine-resident search costs once the
// SoA forms are cached and the scratch arena is warm. ---

void BM_SoaLowering(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(links);
  SymbolPool pool;
  Tableau from =
      BuildTableau(schema->catalog, schema->universe, *ChainJoin(*schema),
                   pool)
          .value();
  for (auto _ : state) {
    SoaTemplate soa = SoaTemplate::Lower(from);
    benchmark::DoNotOptimize(soa);
  }
}
BENCHMARK(BM_SoaLowering)->DenseRange(2, 12, 2);

void BM_HomKernelHitWarm(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(links);
  SymbolPool pool;
  Tableau from =
      BuildTableau(schema->catalog, schema->universe, *ChainJoin(*schema),
                   pool)
          .value();
  Tableau to =
      JoinTableaux(schema->catalog, from,
                   BuildTableau(schema->catalog, schema->universe,
                                *ChainJoin(*schema), pool)
                       .value(),
                   pool)
          .value();
  const SoaTemplate from_soa = SoaTemplate::Lower(from);
  const SoaTemplate to_soa = SoaTemplate::Lower(to);
  HomScratch scratch;
  for (auto _ : state) {
    bool found =
        SoaSearch(from_soa, to_soa, HomMode::kHomomorphism, scratch, nullptr);
    benchmark::DoNotOptimize(found);
  }
}
BENCHMARK(BM_HomKernelHitWarm)->DenseRange(2, 12, 2);

// Wave evaluation: `range(0)` chain sources probed against one two-copy
// target in a single batch, vs. the same probes as scalar calls. The per-
// probe cost difference is the amortization RowEmbedsBatch buys the
// enumerator's level scans and the redundancy warm-up.
void BM_RowEmbedWave(benchmark::State& state) {
  const std::size_t sources = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(6);
  SymbolPool pool;
  Tableau chain =
      BuildTableau(schema->catalog, schema->universe, *ChainJoin(*schema),
                   pool)
          .value();
  Tableau to =
      JoinTableaux(schema->catalog, chain,
                   BuildTableau(schema->catalog, schema->universe,
                                *ChainJoin(*schema), pool)
                       .value(),
                   pool)
          .value();
  const SoaTemplate to_soa = SoaTemplate::Lower(to);
  // Distinct prefixes of the chain as the wave's sources.
  std::vector<SoaTemplate> lowered;
  std::vector<const SoaTemplate*> wave;
  for (std::size_t i = 0; i < sources; ++i) {
    AttrSet kept{schema->attrs[i % (schema->attrs.size() - 1)],
                 schema->attrs[i % (schema->attrs.size() - 1) + 1]};
    lowered.push_back(SoaTemplate::Lower(
        ProjectTableau(schema->catalog, chain, kept, pool).value()));
  }
  for (const SoaTemplate& soa : lowered) wave.push_back(&soa);
  HomScratch scratch;
  for (auto _ : state) {
    std::vector<char> verdicts =
        SoaSearchWave(wave, to_soa, HomMode::kRowEmbedding, scratch);
    benchmark::DoNotOptimize(verdicts);
  }
  state.counters["per_probe_ns"] = benchmark::Counter(
      static_cast<double>(sources), benchmark::Counter::kIsIterationInvariantRate |
                                        benchmark::Counter::kInvert);
}
BENCHMARK(BM_RowEmbedWave)->DenseRange(4, 16, 4);

}  // namespace
}  // namespace bench
}  // namespace viewcap
