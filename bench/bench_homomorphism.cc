// B1: homomorphism search cost (Proposition 2.4.1) vs. template size.
//
// Workloads: chain-join templates. "Hit" maps a k-row chain into a 2k-row
// template containing two interleaved copies; "Miss" maps into a template
// whose last link was severed, forcing the search to exhaust candidates.
//
// The primary entry points (BM_HomomorphismHit/Miss, BM_EquivalenceCheck)
// now run on the flat SoA kernel; the *Legacy twins pin the retired
// pointer-walking HomSearch for a direct series-vs-series comparison, and
// the Kernel/Wave series isolate the engine's steady state (templates
// lowered once, scratch reused across calls).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "base/simd.h"
#include "bench/bench_util.h"
#include "tableau/build.h"
#include "tableau/hom_kernel.h"
#include "tableau/homomorphism.h"
#include "tableau/soa.h"

namespace viewcap {
namespace bench {
namespace {

void BM_HomomorphismHit(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(links);
  SymbolPool pool;
  Tableau from =
      BuildTableau(schema->catalog, schema->universe, *ChainJoin(*schema),
                   pool)
          .value();
  // Two disjoint copies of the chain: every row has 2 candidates.
  Tableau to =
      JoinTableaux(schema->catalog, from,
                   BuildTableau(schema->catalog, schema->universe,
                                *ChainJoin(*schema), pool)
                       .value(),
                   pool)
          .value();
  for (auto _ : state) {
    auto hom = FindHomomorphism(schema->catalog, from, to);
    benchmark::DoNotOptimize(hom);
  }
  state.counters["rows_from"] = static_cast<double>(from.size());
  state.counters["rows_to"] = static_cast<double>(to.size());
}
BENCHMARK(BM_HomomorphismHit)->DenseRange(2, 12, 2);

void BM_HomomorphismMiss(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(links);
  SymbolPool pool;
  Tableau from =
      BuildTableau(schema->catalog, schema->universe, *ChainJoin(*schema),
                   pool)
          .value();
  // Target: the chain with its last link projected away — 0_{Xn} is gone,
  // so no homomorphism exists.
  AttrSet kept = from.Trs();
  kept = kept.Difference(AttrSet{schema->attrs.back()});
  Tableau to =
      ProjectTableau(schema->catalog, from, kept, pool).value();
  for (auto _ : state) {
    bool hom = HasHomomorphism(schema->catalog, from, to);
    benchmark::DoNotOptimize(hom);
  }
}
BENCHMARK(BM_HomomorphismMiss)->DenseRange(2, 12, 2);

void BM_EquivalenceCheck(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(links);
  SymbolPool pool;
  Tableau a =
      BuildTableau(schema->catalog, schema->universe, *ChainJoin(*schema),
                   pool)
          .value();
  // An equivalent but syntactically bloated realization: the join with a
  // redundant projected copy.
  AttrSet half{schema->attrs[0], schema->attrs[1]};
  Tableau extra = ProjectTableau(schema->catalog, a, half, pool).value();
  Tableau b = JoinTableaux(schema->catalog, a, extra, pool).value();
  for (auto _ : state) {
    bool eq = EquivalentTableaux(schema->catalog, a, b);
    benchmark::DoNotOptimize(eq);
  }
}
BENCHMARK(BM_EquivalenceCheck)->DenseRange(2, 12, 2);

// --- Legacy oracle twins: the same workloads on the retired pointer-
// walking HomSearch, for the SoA-vs-legacy series. ---

void BM_HomomorphismHitLegacy(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(links);
  SymbolPool pool;
  Tableau from =
      BuildTableau(schema->catalog, schema->universe, *ChainJoin(*schema),
                   pool)
          .value();
  Tableau to =
      JoinTableaux(schema->catalog, from,
                   BuildTableau(schema->catalog, schema->universe,
                                *ChainJoin(*schema), pool)
                       .value(),
                   pool)
          .value();
  for (auto _ : state) {
    auto hom = legacy::FindHomomorphism(schema->catalog, from, to);
    benchmark::DoNotOptimize(hom);
  }
}
BENCHMARK(BM_HomomorphismHitLegacy)->DenseRange(2, 12, 2);

void BM_HomomorphismMissLegacy(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(links);
  SymbolPool pool;
  Tableau from =
      BuildTableau(schema->catalog, schema->universe, *ChainJoin(*schema),
                   pool)
          .value();
  AttrSet kept = from.Trs();
  kept = kept.Difference(AttrSet{schema->attrs.back()});
  Tableau to = ProjectTableau(schema->catalog, from, kept, pool).value();
  for (auto _ : state) {
    bool hom = legacy::HasHomomorphism(schema->catalog, from, to);
    benchmark::DoNotOptimize(hom);
  }
}
BENCHMARK(BM_HomomorphismMissLegacy)->DenseRange(2, 12, 2);

void BM_EquivalenceCheckLegacy(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(links);
  SymbolPool pool;
  Tableau a =
      BuildTableau(schema->catalog, schema->universe, *ChainJoin(*schema),
                   pool)
          .value();
  AttrSet half{schema->attrs[0], schema->attrs[1]};
  Tableau extra = ProjectTableau(schema->catalog, a, half, pool).value();
  Tableau b = JoinTableaux(schema->catalog, a, extra, pool).value();
  for (auto _ : state) {
    bool eq = legacy::EquivalentTableaux(schema->catalog, a, b);
    benchmark::DoNotOptimize(eq);
  }
}
BENCHMARK(BM_EquivalenceCheckLegacy)->DenseRange(2, 12, 2);

// --- Kernel steady state: what an engine-resident search costs once the
// SoA forms are cached and the scratch arena is warm. ---

void BM_SoaLowering(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(links);
  SymbolPool pool;
  Tableau from =
      BuildTableau(schema->catalog, schema->universe, *ChainJoin(*schema),
                   pool)
          .value();
  for (auto _ : state) {
    SoaTemplate soa = SoaTemplate::Lower(from);
    benchmark::DoNotOptimize(soa);
  }
}
BENCHMARK(BM_SoaLowering)->DenseRange(2, 12, 2);

void BM_HomKernelHitWarm(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(links);
  SymbolPool pool;
  Tableau from =
      BuildTableau(schema->catalog, schema->universe, *ChainJoin(*schema),
                   pool)
          .value();
  Tableau to =
      JoinTableaux(schema->catalog, from,
                   BuildTableau(schema->catalog, schema->universe,
                                *ChainJoin(*schema), pool)
                       .value(),
                   pool)
          .value();
  const SoaTemplate from_soa = SoaTemplate::Lower(from);
  const SoaTemplate to_soa = SoaTemplate::Lower(to);
  HomScratch scratch;
  for (auto _ : state) {
    bool found =
        SoaSearch(from_soa, to_soa, HomMode::kHomomorphism, scratch, nullptr);
    benchmark::DoNotOptimize(found);
  }
}
BENCHMARK(BM_HomKernelHitWarm)->DenseRange(2, 12, 2);

// Wave evaluation: `range(0)` chain sources probed against one two-copy
// target in a single batch, vs. the same probes as scalar calls. The per-
// probe cost difference is the amortization RowEmbedsBatch buys the
// enumerator's level scans and the redundancy warm-up.
void BM_RowEmbedWave(benchmark::State& state) {
  const std::size_t sources = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(6);
  SymbolPool pool;
  Tableau chain =
      BuildTableau(schema->catalog, schema->universe, *ChainJoin(*schema),
                   pool)
          .value();
  Tableau to =
      JoinTableaux(schema->catalog, chain,
                   BuildTableau(schema->catalog, schema->universe,
                                *ChainJoin(*schema), pool)
                       .value(),
                   pool)
          .value();
  const SoaTemplate to_soa = SoaTemplate::Lower(to);
  // Distinct prefixes of the chain as the wave's sources.
  std::vector<SoaTemplate> lowered;
  std::vector<const SoaTemplate*> wave;
  for (std::size_t i = 0; i < sources; ++i) {
    AttrSet kept{schema->attrs[i % (schema->attrs.size() - 1)],
                 schema->attrs[i % (schema->attrs.size() - 1) + 1]};
    lowered.push_back(SoaTemplate::Lower(
        ProjectTableau(schema->catalog, chain, kept, pool).value()));
  }
  for (const SoaTemplate& soa : lowered) wave.push_back(&soa);
  HomScratch scratch;
  for (auto _ : state) {
    std::vector<char> verdicts =
        SoaSearchWave(wave, to_soa, HomMode::kRowEmbedding, scratch);
    benchmark::DoNotOptimize(verdicts);
  }
  state.counters["per_probe_ns"] = benchmark::Counter(
      static_cast<double>(sources), benchmark::Counter::kIsIterationInvariantRate |
                                        benchmark::Counter::kInvert);
}
BENCHMARK(BM_RowEmbedWave)->DenseRange(4, 16, 4);

// --- Candidate-filter-bound series, one copy per runnable SIMD backend.
//
// Target: a two-copy chain join plus `range(0)` "broken chain" decoy
// sets. Each set joins in, per chain relation r_i, one isolated r_i row
// projected onto its first attribute — the decoy row's interior symbol
// occurs in only that one row, so its occurrence signature is strictly
// shorter than the source chain row's shared-symbol signature and the
// row dies in the vectorized signature-length prefilter. (Row-embedding
// mode skips the distinguished-cover stage, so signature-length kills
// are what makes this shape filter-bound.) The filter does essentially
// all the work and the backtracking that follows walks the two
// surviving chain copies. The scalar-vs-simd ratio of these rows is the
// filter speedup the SIMD backend buys (see DESIGN.md, "Vectorized
// candidate filter").

struct FilterWorkload {
  std::unique_ptr<ChainSchema> schema;
  SymbolPool pool;
  SoaTemplate from;
  SoaTemplate to;
};

FilterWorkload MakeFilterWorkload(std::size_t links, std::size_t decoys) {
  FilterWorkload w;
  w.schema = MakeChain(links);
  Tableau from = BuildTableau(w.schema->catalog, w.schema->universe,
                              *ChainJoin(*w.schema), w.pool)
                     .value();
  Tableau to =
      JoinTableaux(w.schema->catalog, from,
                   BuildTableau(w.schema->catalog, w.schema->universe,
                                *ChainJoin(*w.schema), w.pool)
                       .value(),
                   w.pool)
          .value();
  for (std::size_t copy = 0; copy < decoys; ++copy) {
    for (std::size_t i = 0; i < w.schema->relations.size(); ++i) {
      Tableau link =
          BuildTableau(w.schema->catalog, w.schema->universe,
                       *Expr::Rel(w.schema->catalog, w.schema->relations[i]),
                       w.pool)
              .value();
      Tableau decoy = ProjectTableau(w.schema->catalog, link,
                                     AttrSet{w.schema->attrs[i]}, w.pool)
                          .value();
      to = JoinTableaux(w.schema->catalog, to, decoy, w.pool).value();
    }
  }
  w.from = SoaTemplate::Lower(from);
  w.to = SoaTemplate::Lower(to);
  return w;
}

void RunFilterCandidates(benchmark::State& state, SimdBackend backend) {
  const FilterWorkload w =
      MakeFilterWorkload(10, static_cast<std::size_t>(state.range(0)));
  HomScratch scratch;
  scratch.backend = backend;
  std::int64_t survivors = 0;
  for (auto _ : state) {
    survivors =
        SoaBuildCandidates(w.from, w.to, HomMode::kRowEmbedding, scratch);
    benchmark::DoNotOptimize(survivors);
  }
  state.counters["survivors"] = static_cast<double>(survivors);
  state.counters["rows_to"] = static_cast<double>(w.to.num_rows());
}

void RunRowEmbedWaveFilter(benchmark::State& state, SimdBackend backend) {
  const FilterWorkload w =
      MakeFilterWorkload(10, static_cast<std::size_t>(state.range(0)));
  constexpr std::size_t kWave = 16;
  const std::vector<const SoaTemplate*> wave(kWave, &w.from);
  HomScratch scratch;
  scratch.backend = backend;
  for (auto _ : state) {
    std::vector<char> verdicts =
        SoaSearchWave(wave, w.to, HomMode::kRowEmbedding, scratch);
    benchmark::DoNotOptimize(verdicts);
  }
  state.counters["per_probe_ns"] = benchmark::Counter(
      static_cast<double>(kWave),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}

// Registered per available backend at static-init time, so the series
// is present exactly for the backends this machine can run (the JSON
// baseline is recorded on the reference machine, which has all three).
int RegisterFilterBackendSeries() {
  for (const SimdBackend backend : AvailableSimdBackends()) {
    const std::string suffix(SimdBackendName(backend));
    benchmark::RegisterBenchmark(
        ("BM_FilterCandidates/" + suffix).c_str(),
        [backend](benchmark::State& state) {
          RunFilterCandidates(state, backend);
        })
        ->Arg(32)
        ->Arg(128);
    benchmark::RegisterBenchmark(
        ("BM_RowEmbedWaveFilter/" + suffix).c_str(),
        [backend](benchmark::State& state) {
          RunRowEmbedWaveFilter(state, backend);
        })
        ->Arg(64);
  }
  return 0;
}
const int kFilterBackendSeries = RegisterFilterBackendSeries();

}  // namespace
}  // namespace bench
}  // namespace viewcap
