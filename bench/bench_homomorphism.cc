// B1: homomorphism search cost (Proposition 2.4.1) vs. template size.
//
// Workloads: chain-join templates. "Hit" maps a k-row chain into a 2k-row
// template containing two interleaved copies; "Miss" maps into a template
// whose last link was severed, forcing the search to exhaust candidates.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "tableau/build.h"
#include "tableau/homomorphism.h"

namespace viewcap {
namespace bench {
namespace {

void BM_HomomorphismHit(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(links);
  SymbolPool pool;
  Tableau from =
      BuildTableau(schema->catalog, schema->universe, *ChainJoin(*schema),
                   pool)
          .value();
  // Two disjoint copies of the chain: every row has 2 candidates.
  Tableau to =
      JoinTableaux(schema->catalog, from,
                   BuildTableau(schema->catalog, schema->universe,
                                *ChainJoin(*schema), pool)
                       .value(),
                   pool)
          .value();
  for (auto _ : state) {
    auto hom = FindHomomorphism(schema->catalog, from, to);
    benchmark::DoNotOptimize(hom);
  }
  state.counters["rows_from"] = static_cast<double>(from.size());
  state.counters["rows_to"] = static_cast<double>(to.size());
}
BENCHMARK(BM_HomomorphismHit)->DenseRange(2, 12, 2);

void BM_HomomorphismMiss(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(links);
  SymbolPool pool;
  Tableau from =
      BuildTableau(schema->catalog, schema->universe, *ChainJoin(*schema),
                   pool)
          .value();
  // Target: the chain with its last link projected away — 0_{Xn} is gone,
  // so no homomorphism exists.
  AttrSet kept = from.Trs();
  kept = kept.Difference(AttrSet{schema->attrs.back()});
  Tableau to =
      ProjectTableau(schema->catalog, from, kept, pool).value();
  for (auto _ : state) {
    bool hom = HasHomomorphism(schema->catalog, from, to);
    benchmark::DoNotOptimize(hom);
  }
}
BENCHMARK(BM_HomomorphismMiss)->DenseRange(2, 12, 2);

void BM_EquivalenceCheck(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(links);
  SymbolPool pool;
  Tableau a =
      BuildTableau(schema->catalog, schema->universe, *ChainJoin(*schema),
                   pool)
          .value();
  // An equivalent but syntactically bloated realization: the join with a
  // redundant projected copy.
  AttrSet half{schema->attrs[0], schema->attrs[1]};
  Tableau extra = ProjectTableau(schema->catalog, a, half, pool).value();
  Tableau b = JoinTableaux(schema->catalog, a, extra, pool).value();
  for (auto _ : state) {
    bool eq = EquivalentTableaux(schema->catalog, a, b);
    benchmark::DoNotOptimize(eq);
  }
}
BENCHMARK(BM_EquivalenceCheck)->DenseRange(2, 12, 2);

}  // namespace
}  // namespace bench
}  // namespace viewcap
