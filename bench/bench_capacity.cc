// B4: capacity-membership decision cost (Theorem 2.4.11 via Lemma 2.4.10)
// vs. chain length, for both member and non-member queries.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "views/capacity.h"

namespace viewcap {
namespace bench {
namespace {

// Positive: the endpoint projection of the full chain join IS answerable
// from the link view (joining all links and projecting).
void BM_MembershipPositive(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(links);
  View view = MakeLinkView(*schema, "lk");
  AttrSet endpoints{schema->attrs.front(), schema->attrs.back()};
  ExprPtr query = Expr::MustProject(endpoints, ChainJoin(*schema));
  std::size_t tried = 0;
  for (auto _ : state) {
    // A fresh oracle (and engine) per iteration: this series measures the
    // cold search, not the verdict cache (see the WarmEngine variant).
    CapacityOracle oracle(view);
    MembershipResult m = oracle.Contains(query).value();
    if (!m.member) state.SkipWithError("expected member");
    tried = m.candidates_tried;
    benchmark::DoNotOptimize(m);
  }
  state.counters["candidates"] = static_cast<double>(tried);
}
BENCHMARK(BM_MembershipPositive)->DenseRange(2, 5)->Unit(benchmark::kMillisecond);

// The same positive query against a shared engine: after the first
// iteration every Contains is a verdict-cache hit, so this series tracks
// the memoized repeated-query path the views layer now runs on.
void BM_MembershipPositiveWarmEngine(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(links);
  View view = MakeLinkView(*schema, "lk");
  Engine engine(&schema->catalog);
  CapacityOracle oracle(&engine, view);
  AttrSet endpoints{schema->attrs.front(), schema->attrs.back()};
  ExprPtr query = Expr::MustProject(endpoints, ChainJoin(*schema));
  for (auto _ : state) {
    MembershipResult m = oracle.Contains(query).value();
    if (!m.member) state.SkipWithError("expected member");
    benchmark::DoNotOptimize(m);
  }
  EngineStats stats = engine.Stats();
  state.counters["verdict_hits"] = static_cast<double>(stats.verdict.hits());
}
BENCHMARK(BM_MembershipPositiveWarmEngine)
    ->DenseRange(2, 5)
    ->Unit(benchmark::kMillisecond);

// Negative: a raw link is NOT answerable from the join view (projections
// of the join are semijoined); the search must exhaust the space.
void BM_MembershipNegative(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(links);
  View view = MakeJoinView(*schema, "jn");
  ExprPtr query = Expr::Rel(schema->catalog, schema->relations[0]);
  std::size_t tried = 0;
  for (auto _ : state) {
    CapacityOracle oracle(view);
    MembershipResult m = oracle.Contains(query).value();
    if (m.member) state.SkipWithError("expected non-member");
    tried = m.candidates_tried;
    benchmark::DoNotOptimize(m);
  }
  state.counters["candidates"] = static_cast<double>(tried);
}
BENCHMARK(BM_MembershipNegative)->DenseRange(2, 5)->Unit(benchmark::kMillisecond);

// The sharded search: the same exhaustive non-member workload across
// thread counts (arg 0 = links, arg 1 = SearchLimits::threads). The
// threads = 1 row is the serial driver and doubles as the parallel
// series' baseline; on a multi-core machine the wall-clock ratio between
// it and the threads = 4 row is the tentpole speedup figure.
void BM_MembershipNegativeParallel(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  SearchLimits limits;
  limits.threads = static_cast<std::size_t>(state.range(1));
  auto schema = MakeChain(links);
  View view = MakeJoinView(*schema, "jn");
  ExprPtr query = Expr::Rel(schema->catalog, schema->relations[0]);
  std::size_t tried = 0;
  for (auto _ : state) {
    CapacityOracle oracle(view, limits);
    MembershipResult m = oracle.Contains(query).value();
    if (m.member) state.SkipWithError("expected non-member");
    tried = m.candidates_tried;
    benchmark::DoNotOptimize(m);
  }
  state.counters["candidates"] = static_cast<double>(tried);
  state.counters["threads"] = static_cast<double>(limits.threads);
}
BENCHMARK(BM_MembershipNegativeParallel)
    ->Args({4, 1})->Args({4, 2})->Args({4, 4})->Args({4, 8})
    ->Args({5, 1})->Args({5, 2})->Args({5, 4})->Args({5, 8})
    ->Unit(benchmark::kMillisecond);

// Warm variant: one shared engine across iterations, so the memo caches
// (not the verdict cache: each iteration asks under a distinct limits key
// only on the first pass) absorb the kernel work and the series isolates
// the sharding overhead itself.
void BM_MembershipNegativeParallelWarmEngine(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  SearchLimits limits;
  limits.threads = static_cast<std::size_t>(state.range(1));
  auto schema = MakeChain(links);
  View view = MakeJoinView(*schema, "jn");
  Engine engine(&schema->catalog);
  CapacityOracle oracle(&engine, view, limits);
  ExprPtr query = Expr::Rel(schema->catalog, schema->relations[0]);
  for (auto _ : state) {
    MembershipResult m = oracle.Contains(query).value();
    if (m.member) state.SkipWithError("expected non-member");
    benchmark::DoNotOptimize(m);
  }
  EngineStats stats = engine.Stats();
  state.counters["verdict_hits"] = static_cast<double>(stats.verdict.hits());
  state.counters["threads"] = static_cast<double>(limits.threads);
}
BENCHMARK(BM_MembershipNegativeParallelWarmEngine)
    ->Args({4, 1})->Args({4, 2})->Args({4, 4})->Args({4, 8})
    ->Unit(benchmark::kMillisecond);

// Budget sensitivity: the same positive query under growing extra-leaf
// slack (the Lemma 2.4.8 bound plus headroom) — cost of over-budgeting.
void BM_MembershipExtraLeaves(benchmark::State& state) {
  auto schema = MakeChain(3);
  SearchLimits limits;
  limits.extra_leaves = static_cast<std::size_t>(state.range(0));
  // A non-member, so the whole budgeted space is explored.
  ExprPtr query = Expr::Rel(schema->catalog, schema->relations[0]);
  View join_view = MakeJoinView(*schema, "jn");
  std::size_t tried = 0;
  for (auto _ : state) {
    CapacityOracle join_oracle(&schema->catalog,
                               QuerySet::FromView(join_view), limits);
    MembershipResult m = join_oracle.Contains(query).value();
    tried = m.candidates_tried;
    benchmark::DoNotOptimize(m);
  }
  state.counters["candidates"] = static_cast<double>(tried);
}
BENCHMARK(BM_MembershipExtraLeaves)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

// FindConstructions: collecting many witnesses (the Section 3 machinery's
// inner loop).
void BM_FindConstructions(benchmark::State& state) {
  auto schema = MakeChain(2);
  View view = MakeLinkView(*schema, "lk");
  CapacityOracle oracle(view);
  SymbolPool pool;
  Tableau query =
      BuildTableau(schema->catalog, schema->universe, *ChainJoin(*schema),
                   pool)
          .value();
  const std::size_t want = static_cast<std::size_t>(state.range(0));
  std::size_t got = 0;
  for (auto _ : state) {
    auto constructions = oracle.FindConstructions(query, want).value();
    got = constructions.size();
    benchmark::DoNotOptimize(constructions);
  }
  state.counters["found"] = static_cast<double>(got);
}
BENCHMARK(BM_FindConstructions)->Arg(1)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace viewcap
