// Shared entry point for every bench binary: Google Benchmark's flags plus
// the --json=<path> baseline writer (see RunBenchmarkHarness).
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  return viewcap::bench::RunBenchmarkHarness(argc, argv);
}
