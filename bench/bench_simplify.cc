// B7: simplification to the Section 4 normal form — cost vs. input shape,
// and the sizes of the normal forms produced (Theorem 4.2.3's maximality
// in action).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "views/simplify.h"

namespace viewcap {
namespace bench {
namespace {

// The Example 3.1.5 input: one joined definition that splits in two.
void BM_SimplifyExample315(benchmark::State& state) {
  Catalog catalog;
  AttrSet u = catalog.MakeScheme({"A", "B", "C"});
  RelId r = catalog.AddRelation("r", u).value();
  DbSchema base(catalog, {r});
  ExprPtr pab = Expr::MustProject(catalog.MakeScheme({"A", "B"}),
                                  Expr::Rel(catalog, r));
  ExprPtr pbc = Expr::MustProject(catalog.MakeScheme({"B", "C"}),
                                  Expr::Rel(catalog, r));
  RelId l = catalog.MintRelation("l", u);
  View v = View::Create(&catalog, base, {{l, Expr::MustJoin2(pab, pbc)}},
                        "V")
               .value();
  std::size_t out = 0;
  for (auto _ : state) {
    SimplifyOutcome outcome = Simplify(&catalog, v).value();
    out = outcome.view.size();
    benchmark::DoNotOptimize(outcome);
  }
  state.counters["defs_out"] = static_cast<double>(out);
}
BENCHMARK(BM_SimplifyExample315)->Unit(benchmark::kMillisecond);

// The Section 4.1 reconstruction (see EXPERIMENTS.md): S decomposes
// traditionally, T only in S's presence; normal form has 3 queries.
void BM_SimplifySection41(benchmark::State& state) {
  Catalog catalog;
  RelId e = catalog.AddRelation("e", catalog.MakeScheme({"A", "B"})).value();
  RelId f = catalog.AddRelation("f", catalog.MakeScheme({"B", "C"})).value();
  RelId g = catalog.AddRelation("g", catalog.MakeScheme({"A"})).value();
  DbSchema base(catalog, {e, f, g});
  ExprPtr ef = Expr::MustJoin2(Expr::Rel(catalog, e), Expr::Rel(catalog, f));
  ExprPtr t = Expr::MustJoin2(
      Expr::MustProject(catalog.MakeScheme({"A", "C"}), ef),
      Expr::Rel(catalog, g));
  RelId hs = catalog.MintRelation("hS", ef->trs());
  RelId ht = catalog.MintRelation("hT", t->trs());
  View view =
      View::Create(&catalog, base, {{hs, ef}, {ht, t}}, "VST").value();
  std::size_t out = 0;
  for (auto _ : state) {
    SimplifyOutcome outcome = Simplify(&catalog, view).value();
    out = outcome.view.size();
    benchmark::DoNotOptimize(outcome);
  }
  state.counters["defs_out"] = static_cast<double>(out);
}
BENCHMARK(BM_SimplifySection41)->Unit(benchmark::kMillisecond);

// Chain join views: the TRS (and with it the projection lattice the
// simplicity tests wade through) grows with the chain.
void BM_SimplifyChainJoin(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(links);
  View view = MakeJoinView(*schema, "jn");
  std::size_t out = 0;
  for (auto _ : state) {
    SimplifyOutcome outcome = Simplify(&schema->catalog, view).value();
    out = outcome.view.size();
    benchmark::DoNotOptimize(outcome);
  }
  state.counters["defs_out"] = static_cast<double>(out);
}
BENCHMARK(BM_SimplifyChainJoin)
    ->DenseRange(2, 3)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// IsSimplifiedView on an already-normal input: the verification cost.
void BM_VerifySimplified(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(links);
  View view = MakeLinkView(*schema, "lk");
  for (auto _ : state) {
    bool simplified = IsSimplifiedView(&schema->catalog, view).value();
    if (!simplified) state.SkipWithError("expected simplified");
    benchmark::DoNotOptimize(simplified);
  }
}
BENCHMARK(BM_VerifySimplified)->DenseRange(2, 5)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace viewcap
