// Shared workload builders for the benchmark harness.
//
// The paper has no empirical evaluation (see EXPERIMENTS.md); these
// benchmarks characterize the decision procedures it proves decidable.
// Workloads are parameterized families with controlled size knobs so each
// benchmark produces a scaling series.
#ifndef VIEWCAP_BENCH_BENCH_UTIL_H_
#define VIEWCAP_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/viewcap.h"

namespace viewcap {
namespace bench {

/// One per-iteration measurement, as written to the --json baseline file.
struct BenchRecord {
  std::string name;
  std::int64_t iters = 0;
  double ns_per_op = 0.0;
};

/// Console reporter that additionally collects per-iteration runs (skipping
/// aggregates and errored runs) for the JSON baseline output.
class RecordingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const double ns =
          run.iterations > 0
              ? run.real_accumulated_time /
                    static_cast<double>(run.iterations) * 1e9
              : run.real_accumulated_time * 1e9;
      records_.push_back(BenchRecord{run.benchmark_name(),
                                     static_cast<std::int64_t>(run.iterations),
                                     ns});
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<BenchRecord>& records() const { return records_; }

 private:
  std::vector<BenchRecord> records_;
};

/// Escapes a benchmark name for embedding in a JSON string literal.
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Renders records as a stable JSON document: an array of
/// {"name", "iters", "ns_per_op"} objects under a "benchmarks" key.
inline std::string RenderBenchJson(const std::vector<BenchRecord>& records) {
  std::string out = "{\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    char ns[64];
    std::snprintf(ns, sizeof(ns), "%.1f", records[i].ns_per_op);
    out += StrCat("    {\"name\": \"", JsonEscape(records[i].name),
                  "\", \"iters\": ", records[i].iters, ", \"ns_per_op\": ",
                  ns, "}", i + 1 < records.size() ? "," : "", "\n");
  }
  out += "  ]\n}\n";
  return out;
}

/// Shared main for every bench binary: strips a `--json=<path>` flag,
/// forwards the rest to Google Benchmark, and (when requested) writes the
/// per-iteration records to `<path>` after the run. Returns nonzero on
/// unrecognized flags or an unwritable output path.
inline int RunBenchmarkHarness(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    constexpr const char kJsonFlag[] = "--json=";
    if (std::strncmp(argv[i], kJsonFlag, sizeof(kJsonFlag) - 1) == 0) {
      json_path = argv[i] + sizeof(kJsonFlag) - 1;
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  RecordingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", json_path.c_str());
      return 1;
    }
    out << RenderBenchJson(reporter.records());
  }
  return 0;
}

/// A chain schema r1(X0,X1), r2(X1,X2), ..., rn(X(n-1),Xn).
struct ChainSchema {
  Catalog catalog;
  AttrSet universe;
  std::vector<RelId> relations;
  std::vector<AttrId> attrs;
  DbSchema base;
};

inline std::unique_ptr<ChainSchema> MakeChain(std::size_t length) {
  auto out = std::make_unique<ChainSchema>();
  for (std::size_t i = 0; i <= length; ++i) {
    out->attrs.push_back(out->catalog.AddAttribute("X" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < length; ++i) {
    AttrSet scheme{out->attrs[i], out->attrs[i + 1]};
    out->relations.push_back(
        out->catalog.AddRelation("r" + std::to_string(i), scheme).value());
  }
  out->base = DbSchema(out->catalog, out->relations);
  out->universe = out->base.universe();
  return out;
}

/// The full chain join r0 * r1 * ... * r(n-1).
inline ExprPtr ChainJoin(const ChainSchema& schema) {
  std::vector<ExprPtr> parts;
  for (RelId rel : schema.relations) {
    parts.push_back(Expr::Rel(schema.catalog, rel));
  }
  if (parts.size() == 1) return parts[0];
  return Expr::MustJoin(std::move(parts));
}

/// The link view of a chain: one definition per base relation. Its
/// capacity strictly dominates the join view's (the full join is derivable
/// from the links, but a raw link is not derivable from the join, whose
/// projections are semijoined).
inline View MakeLinkView(ChainSchema& schema, const std::string& prefix) {
  std::vector<std::pair<RelId, ExprPtr>> defs;
  for (std::size_t i = 0; i < schema.relations.size(); ++i) {
    ExprPtr link = Expr::Rel(schema.catalog, schema.relations[i]);
    RelId rel = schema.catalog.MintRelation(prefix, link->trs());
    defs.push_back({rel, std::move(link)});
  }
  return View::Create(&schema.catalog, schema.base, std::move(defs), prefix)
      .value();
}

/// A view holding the single full chain join.
inline View MakeJoinView(ChainSchema& schema, const std::string& prefix) {
  ExprPtr join = ChainJoin(schema);
  RelId rel = schema.catalog.MintRelation(prefix, join->trs());
  return View::Create(&schema.catalog, schema.base, {{rel, std::move(join)}},
                      prefix)
      .value();
}

/// A random instantiation of the chain.
inline Instantiation MakeInstance(const ChainSchema& schema,
                                  std::size_t tuples, std::uint32_t domain,
                                  std::uint64_t seed) {
  InstanceOptions options;
  options.tuples_per_relation = tuples;
  options.domain_size = domain;
  options.distinguished_probability = 0.0;
  InstanceGenerator generator(&schema.catalog, options);
  Random rng(seed);
  return generator.Generate(schema.base, rng);
}

}  // namespace bench
}  // namespace viewcap

#endif  // VIEWCAP_BENCH_BENCH_UTIL_H_
