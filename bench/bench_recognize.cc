// B9: expression-template recognition (Prop. 2.4.6) and minimization cost
// vs. template size; includes the zigzag negative family.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "tableau/build.h"
#include "tableau/recognize.h"

namespace viewcap {
namespace bench {
namespace {

void BM_RecognizeChain(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(links);
  SymbolPool pool;
  Tableau t =
      BuildTableau(schema->catalog, schema->universe, *ChainJoin(*schema),
                   pool)
          .value();
  std::size_t tried = 0;
  for (auto _ : state) {
    RecognitionResult result =
        RecognizeExpressionTemplate(schema->catalog, t).value();
    if (result.expression == nullptr) state.SkipWithError("expected yes");
    tried = result.candidates_tried;
    benchmark::DoNotOptimize(result);
  }
  state.counters["candidates"] = static_cast<double>(tried);
}
BENCHMARK(BM_RecognizeChain)->DenseRange(2, 5)->Unit(benchmark::kMillisecond);

void BM_RecognizeZigzagNegative(benchmark::State& state) {
  // The alternating zigzag of the given length over one binary relation:
  // not PJ-expressible; the recognizer must exhaust its space.
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  Catalog catalog;
  AttrSet ab = catalog.MakeScheme({"A", "B"});
  AttrId a = catalog.FindAttribute("A").value();
  AttrId b = catalog.FindAttribute("B").value();
  RelId r = catalog.AddRelation("r", ab).value();
  std::vector<TaggedTuple> zigzag;
  for (std::size_t i = 0; i < rows; ++i) {
    Symbol va = (i == 0) ? Symbol::Distinguished(a)
                         : Symbol::Nondistinguished(
                               a, static_cast<std::uint32_t>((i + 1) / 2));
    Symbol vb = (i + 1 == rows) ? Symbol::Distinguished(b)
                                : Symbol::Nondistinguished(
                                      b, static_cast<std::uint32_t>(
                                             i / 2 + 1));
    zigzag.push_back(TaggedTuple{r, Tuple(ab, {va, vb})});
  }
  Tableau t = Tableau::MustCreate(catalog, ab, std::move(zigzag));
  std::size_t tried = 0;
  for (auto _ : state) {
    RecognitionResult result =
        RecognizeExpressionTemplate(catalog, t).value();
    if (result.expression != nullptr) state.SkipWithError("expected no");
    tried = result.candidates_tried;
    benchmark::DoNotOptimize(result);
  }
  state.counters["candidates"] = static_cast<double>(tried);
}
BENCHMARK(BM_RecognizeZigzagNegative)
    ->DenseRange(3, 7, 2)
    ->Unit(benchmark::kMillisecond);

void BM_MinimizeBloatedChain(benchmark::State& state) {
  // The chain join times `m` redundant projected copies.
  const std::size_t copies = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(3);
  ExprPtr join = ChainJoin(*schema);
  ExprPtr bloated = join;
  AttrSet half{schema->attrs[0], schema->attrs[1]};
  for (std::size_t i = 0; i < copies; ++i) {
    bloated =
        Expr::MustJoin2(bloated, Expr::MustProject(half, join));
  }
  std::size_t leaves_after = 0;
  for (auto _ : state) {
    MinimizeResult result =
        MinimizeExpression(schema->catalog, schema->universe, bloated)
            .value();
    leaves_after = result.leaves_after;
    benchmark::DoNotOptimize(result);
  }
  state.counters["leaves_in"] = static_cast<double>(bloated->LeafCount());
  state.counters["leaves_out"] = static_cast<double>(leaves_after);
}
BENCHMARK(BM_MinimizeBloatedChain)
    ->DenseRange(1, 4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace viewcap
