// B6: redundancy elimination (Theorem 3.1.4) cost and shrinkage.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "views/redundancy.h"

namespace viewcap {
namespace bench {
namespace {

// View = links + the (redundant) full join; elimination drops the join.
void BM_MakeNonredundant(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(links);
  std::vector<std::pair<RelId, ExprPtr>> defs;
  for (RelId rel : schema->relations) {
    ExprPtr link = Expr::Rel(schema->catalog, rel);
    defs.push_back({schema->catalog.MintRelation("d", link->trs()), link});
  }
  ExprPtr join = ChainJoin(*schema);
  defs.push_back({schema->catalog.MintRelation("d", join->trs()), join});
  View view =
      View::Create(&schema->catalog, schema->base, std::move(defs), "R")
          .value();
  std::size_t kept = 0;
  for (auto _ : state) {
    NonredundantViewResult result = MakeNonredundant(view).value();
    kept = result.view.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["defs_in"] = static_cast<double>(view.size());
  state.counters["defs_out"] = static_cast<double>(kept);
}
BENCHMARK(BM_MakeNonredundant)->DenseRange(2, 5)->Unit(benchmark::kMillisecond);

// Already-nonredundant views: the elimination loop is pure verification.
void BM_VerifyNonredundant(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(links);
  View view = MakeLinkView(*schema, "lk");
  QuerySet set = QuerySet::FromView(view);
  for (auto _ : state) {
    bool nonredundant =
        IsNonredundantSet(&schema->catalog, set).value();
    if (!nonredundant) state.SkipWithError("expected nonredundant");
    benchmark::DoNotOptimize(nonredundant);
  }
}
BENCHMARK(BM_VerifyNonredundant)->DenseRange(2, 6)->Unit(benchmark::kMillisecond);

// Parallel series: verification of an already-nonredundant view — every
// leave-one-out membership test runs to exhaustion, and with threads > 1
// they run concurrently (arg 0 = links, arg 1 = SearchLimits::threads).
// Cold: a fresh engine per iteration.
void BM_VerifyNonredundantParallel(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  SearchLimits limits;
  limits.threads = static_cast<std::size_t>(state.range(1));
  auto schema = MakeChain(links);
  View view = MakeLinkView(*schema, "lk");
  QuerySet set = QuerySet::FromView(view);
  for (auto _ : state) {
    bool nonredundant =
        IsNonredundantSet(&schema->catalog, set, limits).value();
    if (!nonredundant) state.SkipWithError("expected nonredundant");
    benchmark::DoNotOptimize(nonredundant);
  }
  state.counters["threads"] = static_cast<double>(limits.threads);
}
BENCHMARK(BM_VerifyNonredundantParallel)
    ->Args({4, 1})->Args({4, 2})->Args({4, 4})->Args({4, 8})
    ->Args({6, 1})->Args({6, 2})->Args({6, 4})->Args({6, 8})
    ->Unit(benchmark::kMillisecond);

// Warm variant: one shared engine, so repeat iterations hit the verdict
// cache and the series bounds the parallel path's bookkeeping overhead.
void BM_VerifyNonredundantParallelWarmEngine(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  SearchLimits limits;
  limits.threads = static_cast<std::size_t>(state.range(1));
  auto schema = MakeChain(links);
  View view = MakeLinkView(*schema, "lk");
  QuerySet set = QuerySet::FromView(view);
  Engine engine(&schema->catalog);
  for (auto _ : state) {
    bool nonredundant =
        IsNonredundantSet(engine, set, limits, nullptr).value();
    if (!nonredundant) state.SkipWithError("expected nonredundant");
    benchmark::DoNotOptimize(nonredundant);
  }
  EngineStats stats = engine.Stats();
  state.counters["verdict_hits"] = static_cast<double>(stats.verdict.hits());
  state.counters["threads"] = static_cast<double>(limits.threads);
}
BENCHMARK(BM_VerifyNonredundantParallelWarmEngine)
    ->Args({4, 1})->Args({4, 2})->Args({4, 4})->Args({4, 8})
    ->Unit(benchmark::kMillisecond);

// The Lemma 3.1.6 size bound is pure template arithmetic: cheap.
void BM_SizeBound(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  auto schema = MakeChain(links);
  View view = MakeLinkView(*schema, "lk");
  QuerySet set = QuerySet::FromView(view);
  for (auto _ : state) {
    std::size_t bound = NonredundantSizeBound(schema->catalog, set);
    benchmark::DoNotOptimize(bound);
  }
}
BENCHMARK(BM_SizeBound)->DenseRange(2, 10, 2);

}  // namespace
}  // namespace bench
}  // namespace viewcap
