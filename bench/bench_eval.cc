// B8: the relational substrate — evaluating expressions and templates
// against instances of growing size (the two realizations of queries,
// Section 1.2 vs Section 2.1).
#include <benchmark/benchmark.h>

#include "algebra/eval.h"
#include "bench/bench_util.h"
#include "tableau/build.h"
#include "tableau/evaluate.h"

namespace viewcap {
namespace bench {
namespace {

void BM_EvaluateExpression(benchmark::State& state) {
  auto schema = MakeChain(3);
  const std::size_t tuples = static_cast<std::size_t>(state.range(0));
  Instantiation alpha = MakeInstance(
      *schema, tuples, static_cast<std::uint32_t>(tuples / 2 + 2), 42);
  ExprPtr join = ChainJoin(*schema);
  std::size_t out = 0;
  for (auto _ : state) {
    Relation result = Evaluate(*join, alpha);
    out = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["out_tuples"] = static_cast<double>(out);
}
BENCHMARK(BM_EvaluateExpression)->RangeMultiplier(4)->Range(8, 512);

void BM_EvaluateTableau(benchmark::State& state) {
  auto schema = MakeChain(3);
  const std::size_t tuples = static_cast<std::size_t>(state.range(0));
  Instantiation alpha = MakeInstance(
      *schema, tuples, static_cast<std::uint32_t>(tuples / 2 + 2), 42);
  SymbolPool pool;
  Tableau t =
      BuildTableau(schema->catalog, schema->universe, *ChainJoin(*schema),
                   pool)
          .value();
  std::size_t out = 0;
  for (auto _ : state) {
    Relation result = EvaluateTableau(t, alpha);
    out = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["out_tuples"] = static_cast<double>(out);
}
BENCHMARK(BM_EvaluateTableau)->RangeMultiplier(4)->Range(8, 512);

void BM_EvaluateProjectedTableau(benchmark::State& state) {
  // Endpoint projection: embeddings still enumerate the chain, but the
  // output dedups aggressively.
  auto schema = MakeChain(3);
  const std::size_t tuples = static_cast<std::size_t>(state.range(0));
  Instantiation alpha = MakeInstance(
      *schema, tuples, static_cast<std::uint32_t>(tuples / 2 + 2), 42);
  SymbolPool pool;
  AttrSet endpoints{schema->attrs.front(), schema->attrs.back()};
  ExprPtr expr = Expr::MustProject(endpoints, ChainJoin(*schema));
  Tableau t =
      BuildTableau(schema->catalog, schema->universe, *expr, pool).value();
  for (auto _ : state) {
    Relation result = EvaluateTableau(t, alpha);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EvaluateProjectedTableau)->RangeMultiplier(4)->Range(8, 512);

void BM_CountEmbeddings(benchmark::State& state) {
  auto schema = MakeChain(3);
  const std::size_t tuples = static_cast<std::size_t>(state.range(0));
  Instantiation alpha = MakeInstance(
      *schema, tuples, static_cast<std::uint32_t>(tuples / 2 + 2), 42);
  SymbolPool pool;
  Tableau t =
      BuildTableau(schema->catalog, schema->universe, *ChainJoin(*schema),
                   pool)
          .value();
  std::size_t embeddings = 0;
  for (auto _ : state) {
    embeddings = CountEmbeddings(t, alpha);
    benchmark::DoNotOptimize(embeddings);
  }
  state.counters["embeddings"] = static_cast<double>(embeddings);
}
BENCHMARK(BM_CountEmbeddings)->RangeMultiplier(4)->Range(8, 128);

void BM_NaturalJoin(benchmark::State& state) {
  auto schema = MakeChain(2);
  const std::size_t tuples = static_cast<std::size_t>(state.range(0));
  Instantiation alpha = MakeInstance(
      *schema, tuples, static_cast<std::uint32_t>(tuples / 2 + 2), 7);
  const Relation& left = alpha.Get(schema->relations[0]);
  const Relation& right = alpha.Get(schema->relations[1]);
  for (auto _ : state) {
    Relation joined = Relation::NaturalJoin(left, right);
    benchmark::DoNotOptimize(joined);
  }
}
BENCHMARK(BM_NaturalJoin)->RangeMultiplier(4)->Range(16, 4096);

}  // namespace
}  // namespace bench
}  // namespace viewcap
