// B10: the serving layer — what viewcapd exists to amortize.
//
// Every series drives the same Dispatcher the CLI and the daemon share.
// The Cold variants rebuild the Workspace (catalog + engine) and reload
// the program every iteration, i.e. one-shot `viewcap_cli` semantics;
// the Warm variants reuse one long-lived Workspace, i.e. daemon
// semantics, where repeated questions hit the engine's verdict caches.
// The cold/warm ratio per chain length is the figure that justifies the
// daemon: >= 10x on repeated membership (see bench/BENCH_serving.json).
//
// BM_ServingProtocolLine measures the daemon's full per-request overhead
// on a warm engine — JSON parse, dispatch, JSON serialize — i.e. what a
// client actually pays per line once the engine is hot.
#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_util.h"
#include "service/dispatcher.h"
#include "service/protocol.h"

namespace viewcap {
namespace bench {
namespace {

/// The chain family as program text: L binary links r1(A0,A1) ...
/// rL(A{L-1},AL) and the link view publishing each link verbatim.
std::string ChainProgram(std::size_t links) {
  std::string schema = "schema { ";
  std::string view = "view Links { ";
  for (std::size_t i = 1; i <= links; ++i) {
    schema += StrCat("r", i, "(A", i - 1, ", A", i, "); ");
    view += StrCat("lk", i, " := r", i, "; ");
  }
  return StrCat(schema, "}\n", view, "}\n");
}

/// The endpoint projection of the full chain join — answerable from the
/// link view by joining every link back together.
std::string EndpointQuery(std::size_t links) {
  std::string join = "r1";
  for (std::size_t i = 2; i <= links; ++i) join += StrCat(" * r", i);
  return StrCat("pi{A0,A", links, "}(", join, ")");
}

Request MembershipRequest(std::size_t links) {
  Request request;
  request.kind = RequestKind::kAnswerable;
  request.view = "Links";
  request.query = EndpointQuery(links);
  return request;
}

/// One-shot serving: a fresh Workspace per request (cold catalog, cold
/// engine, program reload) — what every `viewcap_cli` invocation pays
/// before it can even start searching.
void BM_ServingMembershipCold(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  const std::string program = ChainProgram(links);
  const Request request = MembershipRequest(links);
  for (auto _ : state) {
    Workspace workspace;
    if (!workspace.Load(program).ok()) {
      state.SkipWithError("load failed");
      break;
    }
    Dispatcher dispatcher(&workspace);
    Response response = dispatcher.Handle(request);
    if (response.verdict != true) state.SkipWithError("expected member");
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(BM_ServingMembershipCold)
    ->DenseRange(2, 5)
    ->Unit(benchmark::kMillisecond);

/// Daemon serving: one warm Workspace answers every request. After the
/// first iteration the verdict is a cache hit; the cold/warm ratio at
/// each chain length is the daemon's amortization win.
void BM_ServingMembershipWarm(benchmark::State& state) {
  const std::size_t links = static_cast<std::size_t>(state.range(0));
  Workspace workspace;
  if (!workspace.Load(ChainProgram(links)).ok()) {
    state.SkipWithError("load failed");
    return;
  }
  Dispatcher dispatcher(&workspace);
  const Request request = MembershipRequest(links);
  for (auto _ : state) {
    Response response = dispatcher.Handle(request);
    if (response.verdict != true) state.SkipWithError("expected member");
    benchmark::DoNotOptimize(response);
  }
  state.counters["verdict_hits"] = static_cast<double>(
      workspace.EngineStatsSnapshot().verdict.hits());
}
BENCHMARK(BM_ServingMembershipWarm)
    ->DenseRange(2, 5)
    ->Unit(benchmark::kMillisecond);

// The Example 3.1.5 equivalence pair, cold vs warm: the dominance checks
// both directions of Cap-containment, so the warm engine's dominance and
// verdict caches carry the whole answer.
constexpr const char* kEquivProgram =
    "schema { r(A, B, C); }\n"
    "view V { v := pi{A,B}(r) * pi{B,C}(r); }\n"
    "view W { w1 := pi{A,B}(r); w2 := pi{B,C}(r); }\n";

Request EquivRequest() {
  Request request;
  request.kind = RequestKind::kEquiv;
  request.view = "V";
  request.other_view = "W";
  return request;
}

void BM_ServingEquivalenceCold(benchmark::State& state) {
  const Request request = EquivRequest();
  for (auto _ : state) {
    Workspace workspace;
    if (!workspace.Load(kEquivProgram).ok()) {
      state.SkipWithError("load failed");
      break;
    }
    Dispatcher dispatcher(&workspace);
    Response response = dispatcher.Handle(request);
    if (response.verdict != true) state.SkipWithError("expected equivalent");
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(BM_ServingEquivalenceCold)->Unit(benchmark::kMillisecond);

void BM_ServingEquivalenceWarm(benchmark::State& state) {
  Workspace workspace;
  if (!workspace.Load(kEquivProgram).ok()) {
    state.SkipWithError("load failed");
    return;
  }
  Dispatcher dispatcher(&workspace);
  const Request request = EquivRequest();
  for (auto _ : state) {
    Response response = dispatcher.Handle(request);
    if (response.verdict != true) state.SkipWithError("expected equivalent");
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(BM_ServingEquivalenceWarm)->Unit(benchmark::kMillisecond);

/// Full protocol round trip per request on a warm engine: what one
/// daemon request line costs end to end (parse + dispatch + serialize).
void BM_ServingProtocolLine(benchmark::State& state) {
  const std::size_t links = 3;
  Workspace workspace;
  if (!workspace.Load(ChainProgram(links)).ok()) {
    state.SkipWithError("load failed");
    return;
  }
  Dispatcher dispatcher(&workspace);
  ServerStats stats;
  JsonValue msg = RequestToJson(MembershipRequest(links));
  msg.Set("id", JsonValue::Number(1));
  const std::string line = WriteJson(msg);
  for (auto _ : state) {
    LineOutcome outcome = HandleRequestLine(dispatcher, &stats, line);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_ServingProtocolLine)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace viewcap
