// security_views: the Section 3.1 database-administrator decree.
//
//   "Casual users shall be capable of requesting every query save those
//    which return values for sensitive attributes such as salary or
//    credit rating."
//
// The paper's point: such a decree describes a query set that is closed
// downward by *intent* but not closed under projection/join in the
// technical sense, and the view mechanism can only deliver the smallest
// CLOSED query set containing the granted queries. This example builds a
// personnel database, a sanitized view, and then audits exactly which
// queries leak through the closure.
#include <iostream>

#include "core/viewcap.h"

int main() {
  viewcap::Analyzer analyzer;
  viewcap::Status st = analyzer.Load(R"(
    schema {
      emp(Name, Dept, Salary);
      dept(Dept, Location);
    }
    # The sanitized view: everything except Salary.
    view Public {
      emp_pub  := pi{Name, Dept}(emp);
      dept_pub := dept;
    }
    # A careless alternative that a DBA might propose: it additionally
    # publishes which salary values exist per department ("for salary
    # banding"), believing names are protected.
    view Banded {
      emp_pub2   := pi{Name, Dept}(emp);
      salaries   := pi{Dept, Salary}(emp);
      dept_pub2  := dept;
    }
  )");
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  struct Probe {
    const char* description;
    const char* query;
  };
  const Probe probes[] = {
      {"employee directory", "pi{Name, Dept}(emp)"},
      {"employees by location", "pi{Name, Location}(emp * dept)"},
      {"raw salary table", "pi{Name, Salary}(emp)"},
      {"salary values per department", "pi{Dept, Salary}(emp)"},
      {"full employee records", "emp"},
      {"name-salary pairs via department",
       "pi{Name, Salary}(pi{Name, Dept}(emp) * pi{Dept, Salary}(emp))"},
  };

  for (const char* view_name : {"Public", "Banded"}) {
    std::cout << "== Audit of view '" << view_name << "' ==\n";
    for (const Probe& probe : probes) {
      std::string report;
      auto result = analyzer.CheckAnswerable(view_name, probe.query, &report);
      if (!result.ok()) {
        std::cerr << result.status().ToString() << "\n";
        return 1;
      }
      std::cout << "  " << probe.description << ": "
                << (result->member ? "ANSWERABLE " : "blocked    ");
      if (result->member) {
        std::cout << " via " << ToString(*result->witness,
                                         analyzer.catalog());
      }
      std::cout << "\n";
    }
    std::cout << "\n";
  }

  std::cout
      << "Reading the audit:\n"
      << "  * 'Public' blocks every salary-bearing query: the decree's\n"
      << "    *intended* set is not closed, but its closure stays safe\n"
      << "    because no granted query mentions Salary at all.\n"
      << "  * 'Banded' leaks: the closure of the granted queries contains\n"
      << "    pi{Name, Salary}(...) joined through Dept — name-salary\n"
      << "    associations the DBA never meant to publish. Query capacity\n"
      << "    makes the leak checkable before deployment (Theorem 2.4.11).\n";

  // The two proposals are inequivalent, certified by Theorem 2.4.12.
  std::string report;
  auto eq = analyzer.CheckEquivalence("Public", "Banded", &report);
  std::cout << "\n== Formal comparison ==\n" << report;
  return 0;
}
