// Quickstart: the Example 3.1.5 scenario end to end.
//
// Two working groups defined views over the same ternary relation r(A,B,C):
// one exported a single joined relation, the other two projections. Are the
// two view definitions interchangeable? Query capacity answers yes — and
// produces, for every relation of one view, the query over the other view
// that reconstructs it.
#include <cstdio>
#include <iostream>

#include "core/viewcap.h"

int main() {
  viewcap::Analyzer analyzer;
  viewcap::Status st = analyzer.Load(R"(
    schema { r(A, B, C); }

    # One relation holding the join of both projections.
    view Joined { j := pi{A,B}(r) * pi{B,C}(r); }

    # Two relations holding the projections separately.
    view Split { p_ab := pi{A,B}(r); p_bc := pi{B,C}(r); }
  )");
  if (!st.ok()) {
    std::cerr << "load failed: " << st.ToString() << "\n";
    return 1;
  }

  // --- 1. Decide equivalence (Theorem 2.4.12). -------------------------
  std::string report;
  auto equivalence = analyzer.CheckEquivalence("Joined", "Split", &report);
  if (!equivalence.ok()) {
    std::cerr << equivalence.status().ToString() << "\n";
    return 1;
  }
  std::cout << "== View equivalence (Example 3.1.5) ==\n" << report << "\n";

  // --- 2. Ask whether a specific database query is answerable ----------
  //        through a view (Theorem 2.4.11).
  for (const char* query :
       {"pi{A,C}(pi{A,B}(r) * pi{B,C}(r))",  // Derivable from both views.
        "r",                                 // Derivable from neither.
        "pi{B}(r)"}) {
    auto answerable = analyzer.CheckAnswerable("Split", query, &report);
    if (!answerable.ok()) {
      std::cerr << answerable.status().ToString() << "\n";
      return 1;
    }
    std::cout << "query " << query << " through Split: " << report;
  }

  // --- 3. Run a view query against a concrete database. ----------------
  // Surrogates (Theorem 1.4.2) mean a view query can always be answered by
  // the base engine directly.
  viewcap::Catalog& catalog = analyzer.catalog();
  viewcap::RelId r = catalog.FindRelation("r").value();
  viewcap::AttrId a = catalog.FindAttribute("A").value();
  viewcap::AttrId b = catalog.FindAttribute("B").value();
  viewcap::AttrId c = catalog.FindAttribute("C").value();
  const viewcap::AttrSet& scheme = catalog.RelationScheme(r);

  viewcap::Relation data(scheme);
  auto tuple = [&](std::uint32_t va, std::uint32_t vb, std::uint32_t vc) {
    return viewcap::Tuple(scheme,
                          {viewcap::Symbol::Nondistinguished(a, va),
                           viewcap::Symbol::Nondistinguished(b, vb),
                           viewcap::Symbol::Nondistinguished(c, vc)});
  };
  data.Insert(tuple(1, 1, 1));
  data.Insert(tuple(2, 1, 3));
  data.Insert(tuple(2, 2, 2));
  viewcap::Instantiation alpha(&catalog);
  if (auto set = alpha.Set(r, data); !set.ok()) {
    std::cerr << set.ToString() << "\n";
    return 1;
  }

  const viewcap::View* split = analyzer.GetView("Split").value();
  viewcap::ExprPtr view_query =
      viewcap::ParseExpr(catalog, "pi{A,C}(p_ab * p_bc)").value();
  viewcap::ExprPtr surrogate = split->Surrogate(view_query).value();
  std::cout << "\n== Running a view query ==\n";
  std::cout << "view query    : " << ToString(*view_query, catalog) << "\n";
  std::cout << "surrogate     : " << ToString(*surrogate, catalog) << "\n";
  std::cout << "result over r = {(1,1,1),(2,1,3),(2,2,2)}:\n"
            << Evaluate(*surrogate, alpha).ToString(catalog);

  // The two evaluation routes agree (Theorem 1.4.2).
  viewcap::Instantiation induced = split->Induce(alpha);
  if (Evaluate(*view_query, induced) != Evaluate(*surrogate, alpha)) {
    std::cerr << "surrogate mismatch (bug)\n";
    return 1;
  }
  std::cout << "\n(view-side evaluation agrees with the surrogate)\n";
  return 0;
}
