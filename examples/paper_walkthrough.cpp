// paper_walkthrough: regenerates the paper's figures and worked examples.
//
//   Figure 1 / Example 2.2.2 : template substitution T -> beta
//   Section 2.3              : a construction of Q from {S1, S2}
//   Figure 2 / Examples 3.2.1-3.2.2 : exhibited construction, T-blocks,
//                                     lineage, essential tagged tuples
//
// Every equivalence printed here is decided by the homomorphism machinery
// (Corollary 2.4.2); nothing is hard-coded.
#include <iostream>

#include "core/viewcap.h"

namespace vc = viewcap;

namespace {

vc::TaggedTuple MakeRow(const vc::Catalog& catalog, const vc::AttrSet& u,
                        const char* rel, std::vector<vc::Symbol> values) {
  return vc::TaggedTuple{catalog.FindRelation(rel).value(),
                         vc::Tuple(u, std::move(values))};
}

}  // namespace

int main() {
  vc::Catalog catalog;
  const vc::AttrSet u = catalog.MakeScheme({"A", "B", "C"});
  const vc::AttrSet ab = catalog.MakeScheme({"A", "B"});
  const vc::AttrId A = catalog.FindAttribute("A").value();
  const vc::AttrId B = catalog.FindAttribute("B").value();
  const vc::AttrId C = catalog.FindAttribute("C").value();
  auto d = [](vc::AttrId attr) { return vc::Symbol::Distinguished(attr); };
  auto n = [](vc::AttrId attr, std::uint32_t i) {
    return vc::Symbol::Nondistinguished(attr, i);
  };

  // ===================== Figure 1 / Example 2.2.2 =====================
  catalog.AddRelation("eta1", ab).value();
  catalog.AddRelation("eta2", u).value();
  catalog.AddRelation("eta3", u).value();
  catalog.AddRelation("eta4", u).value();

  vc::Tableau t = vc::Tableau::MustCreate(
      catalog, u,
      {MakeRow(catalog, u, "eta1", {d(A), n(B, 1), n(C, 1)}),
       MakeRow(catalog, u, "eta2", {n(A, 1), d(B), n(C, 2)}),
       MakeRow(catalog, u, "eta2", {n(A, 1), n(B, 2), d(C)})});
  vc::Tableau s1 = vc::Tableau::MustCreate(
      catalog, u,
      {MakeRow(catalog, u, "eta3", {n(A, 3), d(B), n(C, 3)}),
       MakeRow(catalog, u, "eta3", {d(A), n(B, 3), n(C, 3)})});
  vc::Tableau s2 = vc::Tableau::MustCreate(
      catalog, u,
      {MakeRow(catalog, u, "eta4", {d(A), d(B), n(C, 4)}),
       MakeRow(catalog, u, "eta4", {n(A, 4), n(B, 4), d(C)})});

  std::cout << "========== Figure 1: template substitution ==========\n";
  std::cout << "T =\n" << t.ToString(catalog);
  std::cout << "S1 =\n" << s1.ToString(catalog);
  std::cout << "S2 =\n" << s2.ToString(catalog);

  vc::TemplateAssignment beta;
  beta.emplace(catalog.FindRelation("eta1").value(), s1);
  beta.emplace(catalog.FindRelation("eta2").value(), s2);
  vc::SymbolPool pool;
  vc::SubstitutionOutcome outcome =
      vc::Substitute(catalog, t, beta, pool).value();
  std::cout << "T -> beta  (" << outcome.result.size() << " rows) =\n"
            << outcome.result.ToString(catalog);

  // Example 2.2.2's closing claims, decided by homomorphisms.
  vc::ExprPtr t_expr =
      vc::ParseExpr(catalog,
                    "pi{A}(eta1) * pi{B, C}(pi{A, B}(eta2) * pi{A, C}(eta2))")
          .value();
  vc::ExprPtr sub_expr =
      vc::ParseExpr(catalog, "pi{A}(eta3) * pi{B}(eta4) * pi{C}(eta4)")
          .value();
  std::cout << "T == " << ToString(*t_expr, catalog) << " : "
            << vc::EquivalentTableaux(
                   catalog, t, vc::MustBuildTableau(catalog, u, *t_expr))
            << "\n";
  std::cout << "T -> beta == " << ToString(*sub_expr, catalog) << " : "
            << vc::EquivalentTableaux(
                   catalog, outcome.result,
                   vc::MustBuildTableau(catalog, u, *sub_expr))
            << "\n\n";

  // ===================== Section 2.3 construction =====================
  std::cout << "========== Section 2.3: a construction of Q ==========\n";
  vc::Tableau q = vc::Tableau::MustCreate(
      catalog, u,
      {MakeRow(catalog, u, "eta3", {d(A), n(B, 11), n(C, 11)}),
       MakeRow(catalog, u, "eta4", {n(A, 12), d(B), n(C, 12)}),
       MakeRow(catalog, u, "eta4", {n(A, 13), n(B, 13), d(C)})});
  std::cout << "Q =\n" << q.ToString(catalog);
  std::cout << "Q == T -> beta : "
            << vc::EquivalentTableaux(catalog, q, outcome.result)
            << "   (so T -> beta is a construction of Q from {S1, S2})\n\n";

  // ============== Figure 2 / Examples 3.2.1 and 3.2.2 =================
  std::cout << "========== Figure 2: exhibited construction ==========\n";
  catalog.AddRelation("lambda1", ab).value();
  catalog.AddRelation("lambda2", u).value();
  catalog.AddRelation("lambda3", u).value();

  vc::Tableau fig2_s = vc::Tableau::MustCreate(
      catalog, u, {MakeRow(catalog, u, "eta1", {d(A), d(B), n(C, 21)})});
  vc::Tableau fig2_t = vc::Tableau::MustCreate(
      catalog, u,
      {MakeRow(catalog, u, "eta1", {d(A), n(B, 21), n(C, 22)}),
       MakeRow(catalog, u, "eta2", {n(A, 21), n(B, 21), d(C)}),
       MakeRow(catalog, u, "eta2", {n(A, 22), d(B), d(C)})});
  vc::Tableau fig2_e = vc::Tableau::MustCreate(
      catalog, u,
      {MakeRow(catalog, u, "lambda1", {d(A), n(B, 31), n(C, 31)}),
       MakeRow(catalog, u, "lambda2", {n(A, 31), n(B, 31), d(C)}),
       MakeRow(catalog, u, "lambda3", {n(A, 32), d(B), d(C)})});
  std::cout << "S =\n" << fig2_s.ToString(catalog);
  std::cout << "T =\n" << fig2_t.ToString(catalog);
  std::cout << "E =\n" << fig2_e.ToString(catalog);

  vc::TemplateAssignment fig2_beta;
  fig2_beta.emplace(catalog.FindRelation("lambda1").value(), fig2_s);
  fig2_beta.emplace(catalog.FindRelation("lambda2").value(), fig2_t);
  fig2_beta.emplace(catalog.FindRelation("lambda3").value(), fig2_t);
  vc::SubstitutionOutcome fig2_outcome =
      vc::Substitute(catalog, fig2_e, fig2_beta, pool).value();
  std::cout << "E -> beta (" << fig2_outcome.result.size() << " rows) =\n"
            << fig2_outcome.result.ToString(catalog);
  std::cout << "E -> beta == T : "
            << vc::EquivalentTableaux(catalog, fig2_outcome.result, fig2_t)
            << "   (a construction of T from {S, T})\n";

  vc::SymbolMap hom =
      vc::FindHomomorphism(catalog, fig2_t, fig2_outcome.result).value();
  vc::ExhibitedConstruction construction{nullptr, fig2_e, fig2_beta,
                                         std::move(fig2_outcome),
                                         std::move(hom)};
  vc::DescendantAnalysis analysis =
      vc::AnalyzeDescendants(fig2_t, fig2_t, construction);
  const char* names[] = {"tau1", "tau2", "tau3"};
  for (std::size_t i = 0; i < fig2_t.size(); ++i) {
    std::cout << names[i] << ": immediate descendant = ";
    if (analysis.immediate_descendant[i].has_value()) {
      std::cout << names[*analysis.immediate_descendant[i]];
    } else {
      std::cout << "(non-T-block child)";
    }
    std::cout << ", self-descendent = "
              << vc::IsSelfDescendent(analysis, i) << "\n";
  }

  std::cout << "\nconnected components of T: ";
  for (const auto& component : vc::ConnectedComponents(fig2_t)) {
    std::cout << "{ ";
    for (std::size_t i : component) std::cout << names[i] << " ";
    std::cout << "} ";
  }
  std::cout << "\n";

  // Example 3.2.2: tau3 is essential.
  vc::RelId hs = catalog.MintRelation("h_s", ab);
  vc::RelId ht = catalog.MintRelation("h_t", u);
  vc::QuerySet set =
      vc::QuerySet::Create(&catalog, u,
                           {vc::QuerySet::Member{hs, fig2_s},
                            vc::QuerySet::Member{ht, fig2_t}})
          .value();
  for (std::size_t i = 0; i < fig2_t.size(); ++i) {
    vc::EssentialResult essential =
        vc::ClassifyEssential(&catalog, set, 1, i, vc::SearchLimits{}, 128)
            .value();
    const char* verdict =
        essential.verdict == vc::EssentialVerdict::kEssential
            ? "ESSENTIAL"
            : essential.verdict == vc::EssentialVerdict::kNotEssential
                  ? "not essential"
                  : "unknown (budget)";
    std::cout << names[i] << ": " << verdict << "  [" << essential.reason
              << "]\n";
  }
  return 0;
}
