// schema_design: using redundancy elimination (Section 3) and the
// simplified normal form (Section 4) as a view-design advisor.
//
// The scenario is the reconstruction of the paper's Section 4.1 worked
// example (see EXPERIMENTS.md): a staffing database
//   e(A, B)  -- employee A works in bureau B
//   f(B, C)  -- bureau B serves city C
//   g(A)     -- employees with a field certification
// with a view exposing
//   S := e * f                 (who works where, serving which city)
//   T := pi{A,C}(e * f) * g    (certified employees and the cities they
//                               can be dispatched to)
// S decomposes on its own; T does not — but in the presence of S it does,
// which only the inter-relational analysis of Section 4 can discover.
#include <iostream>

#include "core/viewcap.h"

int main() {
  viewcap::Analyzer analyzer;
  viewcap::Status st = analyzer.Load(R"(
    schema { e(A, B); f(B, C); g(A); }
    view Dispatch {
      S := e * f;
      T := pi{A,C}(e * f) * g;
    }
  )");
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  viewcap::Catalog& catalog = analyzer.catalog();
  const viewcap::View* view = analyzer.GetView("Dispatch").value();
  std::cout << "== Input view ==\n" << view->ToString() << "\n";

  // --- Redundancy analysis (Section 3.1). -------------------------------
  viewcap::QuerySet set = viewcap::QuerySet::FromView(*view);
  std::cout << "== Redundancy analysis ==\n";
  for (std::size_t i = 0; i < set.size(); ++i) {
    auto result = viewcap::IsRedundant(&catalog, set, i);
    std::cout << "  "
              << catalog.RelationName(view->definitions()[i].rel) << ": "
              << (result->redundant ? "REDUNDANT" : "nonredundant") << "\n";
  }
  std::cout << "  bound on any nonredundant equivalent's size: "
            << viewcap::NonredundantSizeBound(catalog, set) << "\n\n";

  // --- Simplicity analysis (Section 4.1). -------------------------------
  std::cout << "== Simplicity analysis ==\n";
  for (std::size_t i = 0; i < set.size(); ++i) {
    auto result = viewcap::IsSimple(&catalog, set, i);
    std::cout << "  "
              << catalog.RelationName(view->definitions()[i].rel) << ": "
              << (result->simple ? "simple" : "DECOMPOSABLE");
    if (!result->simple && result->membership.witness != nullptr) {
      std::cout << "  (reconstructed by "
                << ToString(*result->membership.witness, catalog) << ")";
    }
    std::cout << "\n";
  }

  // --- Normalize (Theorem 4.1.3). ---------------------------------------
  std::string report;
  auto simplified = analyzer.SimplifyView("Dispatch", &report);
  if (!simplified.ok()) {
    std::cerr << simplified.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\n== Simplified normal form (unique up to renaming) ==\n"
            << report;

  // --- Certify the result. ----------------------------------------------
  auto equivalent = viewcap::AreEquivalent(*view, simplified->view);
  bool is_simplified =
      viewcap::IsSimplifiedView(&catalog, simplified->view).value();
  std::cout << "\nequivalent to the input : "
            << (equivalent->equivalent ? "yes" : "NO (bug)") << "\n";
  std::cout << "in normal form          : "
            << (is_simplified ? "yes" : "NO (bug)") << "\n";
  std::cout << "definitions             : " << view->size() << " -> "
            << simplified->view.size()
            << "  (Theorem 4.2.3: the normal form is the largest\n"
               "                           nonredundant equivalent — its "
               "queries are the simplest)\n";
  return equivalent->equivalent && is_simplified ? 0 : 1;
}
