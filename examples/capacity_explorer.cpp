// capacity_explorer: materializing the bounded fragment of Cap(V).
//
// Section 3.1 classifies closed query sets into three categories and warns
// that the view mechanism can only grant the smallest CLOSED query set
// containing what the administrator intended. Closures are infinite, but
// the fragment derivable with at most k view-query leaves is finite — and
// it is exactly what a user of the view can write down with bounded
// effort. This example prints that fragment for the two views of
// Example 3.1.5 and shows (a) how the counts grow with k and (b) that the
// two equivalent views enumerate the same query classes.
#include <iostream>
#include <map>

#include "core/viewcap.h"

int main() {
  viewcap::Analyzer analyzer;
  viewcap::Status st = analyzer.Load(R"(
    schema { r(A, B, C); }
    view Joined { j  := pi{A,B}(r) * pi{B,C}(r); }
    view Split  { p1 := pi{A,B}(r); p2 := pi{B,C}(r); }
  )");
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  std::cout << "== Size-bounded fragments of the two capacities ==\n";
  for (std::size_t leaves = 1; leaves <= 3; ++leaves) {
    auto joined =
        analyzer.EnumerateViewCapacity("Joined", leaves, 512);
    auto split = analyzer.EnumerateViewCapacity("Split", leaves, 512);
    if (!joined.ok() || !split.ok()) {
      std::cerr << "enumeration failed\n";
      return 1;
    }
    std::cout << "  <= " << leaves << " leaves:  |Cap(Joined)| = "
              << joined->size() << ",  |Cap(Split)| = " << split->size()
              << "\n";
  }

  std::cout << "\n== The <=2-leaf fragment of Cap(Split), spelled out ==\n";
  std::string report;
  auto entries = analyzer.EnumerateViewCapacity("Split", 2, 512, &report);
  if (!entries.ok()) {
    std::cerr << entries.status().ToString() << "\n";
    return 1;
  }
  std::cout << report;

  // Equivalent views have the same capacity, so every member enumerated
  // from one view must be answerable through the other (Theorem 1.5.5 in
  // action, member by member).
  const viewcap::View* joined_view = analyzer.GetView("Joined").value();
  viewcap::CapacityOracle joined_oracle(*joined_view);
  std::size_t confirmed = 0;
  for (const auto& entry : *entries) {
    auto member = joined_oracle.Contains(entry.query);
    if (!member.ok() || !member->member) {
      std::cerr << "capacity mismatch (bug): "
                << ToString(*entry.witness, analyzer.catalog()) << "\n";
      return 1;
    }
    ++confirmed;
  }
  std::cout << "\nAll " << confirmed
            << " enumerated members of Cap(Split) confirmed answerable "
               "through Joined.\n";

  // Group the fragment by target scheme: the "reachable schemas" a user
  // of the view can populate.
  std::map<std::string, std::size_t> by_scheme;
  for (const auto& entry : *entries) {
    ++by_scheme[ToString(entry.query.Trs(), analyzer.catalog())];
  }
  std::cout << "\n== Members per target scheme (<= 2 leaves) ==\n";
  for (const auto& [scheme, count] : by_scheme) {
    std::cout << "  " << scheme << " : " << count << "\n";
  }
  return 0;
}
