# Empty dependencies file for security_views.
# This may be replaced when dependencies are built.
