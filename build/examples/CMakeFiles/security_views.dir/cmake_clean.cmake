file(REMOVE_RECURSE
  "CMakeFiles/security_views.dir/security_views.cpp.o"
  "CMakeFiles/security_views.dir/security_views.cpp.o.d"
  "security_views"
  "security_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/security_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
