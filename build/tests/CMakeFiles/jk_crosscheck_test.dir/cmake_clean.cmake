file(REMOVE_RECURSE
  "CMakeFiles/jk_crosscheck_test.dir/jk_crosscheck_test.cc.o"
  "CMakeFiles/jk_crosscheck_test.dir/jk_crosscheck_test.cc.o.d"
  "jk_crosscheck_test"
  "jk_crosscheck_test.pdb"
  "jk_crosscheck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jk_crosscheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
