# Empty compiler generated dependencies file for jk_crosscheck_test.
# This may be replaced when dependencies are built.
