file(REMOVE_RECURSE
  "CMakeFiles/build_test.dir/build_test.cc.o"
  "CMakeFiles/build_test.dir/build_test.cc.o.d"
  "build_test"
  "build_test.pdb"
  "build_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/build_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
