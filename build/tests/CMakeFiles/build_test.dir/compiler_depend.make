# Empty compiler generated dependencies file for build_test.
# This may be replaced when dependencies are built.
