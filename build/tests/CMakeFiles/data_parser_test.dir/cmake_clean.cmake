file(REMOVE_RECURSE
  "CMakeFiles/data_parser_test.dir/data_parser_test.cc.o"
  "CMakeFiles/data_parser_test.dir/data_parser_test.cc.o.d"
  "data_parser_test"
  "data_parser_test.pdb"
  "data_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
