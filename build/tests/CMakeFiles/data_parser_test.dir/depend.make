# Empty dependencies file for data_parser_test.
# This may be replaced when dependencies are built.
