# Empty dependencies file for recognize_test.
# This may be replaced when dependencies are built.
