file(REMOVE_RECURSE
  "CMakeFiles/recognize_test.dir/recognize_test.cc.o"
  "CMakeFiles/recognize_test.dir/recognize_test.cc.o.d"
  "recognize_test"
  "recognize_test.pdb"
  "recognize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recognize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
