file(REMOVE_RECURSE
  "CMakeFiles/symbol_tuple_test.dir/symbol_tuple_test.cc.o"
  "CMakeFiles/symbol_tuple_test.dir/symbol_tuple_test.cc.o.d"
  "symbol_tuple_test"
  "symbol_tuple_test.pdb"
  "symbol_tuple_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbol_tuple_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
