file(REMOVE_RECURSE
  "CMakeFiles/essential_test.dir/essential_test.cc.o"
  "CMakeFiles/essential_test.dir/essential_test.cc.o.d"
  "essential_test"
  "essential_test.pdb"
  "essential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
