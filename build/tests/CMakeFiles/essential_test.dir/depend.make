# Empty dependencies file for essential_test.
# This may be replaced when dependencies are built.
