file(REMOVE_RECURSE
  "CMakeFiles/bench_homomorphism.dir/bench_homomorphism.cc.o"
  "CMakeFiles/bench_homomorphism.dir/bench_homomorphism.cc.o.d"
  "bench_homomorphism"
  "bench_homomorphism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_homomorphism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
