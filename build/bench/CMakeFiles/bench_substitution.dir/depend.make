# Empty dependencies file for bench_substitution.
# This may be replaced when dependencies are built.
