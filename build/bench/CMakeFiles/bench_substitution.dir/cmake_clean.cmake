file(REMOVE_RECURSE
  "CMakeFiles/bench_substitution.dir/bench_substitution.cc.o"
  "CMakeFiles/bench_substitution.dir/bench_substitution.cc.o.d"
  "bench_substitution"
  "bench_substitution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_substitution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
