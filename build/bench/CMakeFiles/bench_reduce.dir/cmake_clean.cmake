file(REMOVE_RECURSE
  "CMakeFiles/bench_reduce.dir/bench_reduce.cc.o"
  "CMakeFiles/bench_reduce.dir/bench_reduce.cc.o.d"
  "bench_reduce"
  "bench_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
