# Empty dependencies file for bench_recognize.
# This may be replaced when dependencies are built.
