file(REMOVE_RECURSE
  "CMakeFiles/bench_recognize.dir/bench_recognize.cc.o"
  "CMakeFiles/bench_recognize.dir/bench_recognize.cc.o.d"
  "bench_recognize"
  "bench_recognize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recognize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
