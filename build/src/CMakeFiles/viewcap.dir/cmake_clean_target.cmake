file(REMOVE_RECURSE
  "libviewcap.a"
)
