# Empty compiler generated dependencies file for viewcap.
# This may be replaced when dependencies are built.
