
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/enumerator.cc" "src/CMakeFiles/viewcap.dir/algebra/enumerator.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/algebra/enumerator.cc.o.d"
  "/root/repo/src/algebra/eval.cc" "src/CMakeFiles/viewcap.dir/algebra/eval.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/algebra/eval.cc.o.d"
  "/root/repo/src/algebra/expand.cc" "src/CMakeFiles/viewcap.dir/algebra/expand.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/algebra/expand.cc.o.d"
  "/root/repo/src/algebra/expr.cc" "src/CMakeFiles/viewcap.dir/algebra/expr.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/algebra/expr.cc.o.d"
  "/root/repo/src/algebra/parser.cc" "src/CMakeFiles/viewcap.dir/algebra/parser.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/algebra/parser.cc.o.d"
  "/root/repo/src/algebra/printer.cc" "src/CMakeFiles/viewcap.dir/algebra/printer.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/algebra/printer.cc.o.d"
  "/root/repo/src/base/random.cc" "src/CMakeFiles/viewcap.dir/base/random.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/base/random.cc.o.d"
  "/root/repo/src/base/status.cc" "src/CMakeFiles/viewcap.dir/base/status.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/base/status.cc.o.d"
  "/root/repo/src/base/strings.cc" "src/CMakeFiles/viewcap.dir/base/strings.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/base/strings.cc.o.d"
  "/root/repo/src/core/analyzer.cc" "src/CMakeFiles/viewcap.dir/core/analyzer.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/core/analyzer.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/viewcap.dir/core/report.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/core/report.cc.o.d"
  "/root/repo/src/relation/attr_set.cc" "src/CMakeFiles/viewcap.dir/relation/attr_set.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/relation/attr_set.cc.o.d"
  "/root/repo/src/relation/catalog.cc" "src/CMakeFiles/viewcap.dir/relation/catalog.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/relation/catalog.cc.o.d"
  "/root/repo/src/relation/data_parser.cc" "src/CMakeFiles/viewcap.dir/relation/data_parser.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/relation/data_parser.cc.o.d"
  "/root/repo/src/relation/generator.cc" "src/CMakeFiles/viewcap.dir/relation/generator.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/relation/generator.cc.o.d"
  "/root/repo/src/relation/instantiation.cc" "src/CMakeFiles/viewcap.dir/relation/instantiation.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/relation/instantiation.cc.o.d"
  "/root/repo/src/relation/relation.cc" "src/CMakeFiles/viewcap.dir/relation/relation.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/relation/relation.cc.o.d"
  "/root/repo/src/relation/symbol.cc" "src/CMakeFiles/viewcap.dir/relation/symbol.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/relation/symbol.cc.o.d"
  "/root/repo/src/relation/tuple.cc" "src/CMakeFiles/viewcap.dir/relation/tuple.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/relation/tuple.cc.o.d"
  "/root/repo/src/tableau/build.cc" "src/CMakeFiles/viewcap.dir/tableau/build.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/tableau/build.cc.o.d"
  "/root/repo/src/tableau/canonical.cc" "src/CMakeFiles/viewcap.dir/tableau/canonical.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/tableau/canonical.cc.o.d"
  "/root/repo/src/tableau/counterexample.cc" "src/CMakeFiles/viewcap.dir/tableau/counterexample.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/tableau/counterexample.cc.o.d"
  "/root/repo/src/tableau/evaluate.cc" "src/CMakeFiles/viewcap.dir/tableau/evaluate.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/tableau/evaluate.cc.o.d"
  "/root/repo/src/tableau/homomorphism.cc" "src/CMakeFiles/viewcap.dir/tableau/homomorphism.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/tableau/homomorphism.cc.o.d"
  "/root/repo/src/tableau/recognize.cc" "src/CMakeFiles/viewcap.dir/tableau/recognize.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/tableau/recognize.cc.o.d"
  "/root/repo/src/tableau/reduce.cc" "src/CMakeFiles/viewcap.dir/tableau/reduce.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/tableau/reduce.cc.o.d"
  "/root/repo/src/tableau/substitution.cc" "src/CMakeFiles/viewcap.dir/tableau/substitution.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/tableau/substitution.cc.o.d"
  "/root/repo/src/tableau/tableau.cc" "src/CMakeFiles/viewcap.dir/tableau/tableau.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/tableau/tableau.cc.o.d"
  "/root/repo/src/views/capacity.cc" "src/CMakeFiles/viewcap.dir/views/capacity.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/views/capacity.cc.o.d"
  "/root/repo/src/views/components.cc" "src/CMakeFiles/viewcap.dir/views/components.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/views/components.cc.o.d"
  "/root/repo/src/views/compose.cc" "src/CMakeFiles/viewcap.dir/views/compose.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/views/compose.cc.o.d"
  "/root/repo/src/views/equivalence.cc" "src/CMakeFiles/viewcap.dir/views/equivalence.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/views/equivalence.cc.o.d"
  "/root/repo/src/views/essential.cc" "src/CMakeFiles/viewcap.dir/views/essential.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/views/essential.cc.o.d"
  "/root/repo/src/views/redundancy.cc" "src/CMakeFiles/viewcap.dir/views/redundancy.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/views/redundancy.cc.o.d"
  "/root/repo/src/views/simplify.cc" "src/CMakeFiles/viewcap.dir/views/simplify.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/views/simplify.cc.o.d"
  "/root/repo/src/views/view.cc" "src/CMakeFiles/viewcap.dir/views/view.cc.o" "gcc" "src/CMakeFiles/viewcap.dir/views/view.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
