# Empty compiler generated dependencies file for viewcap_cli.
# This may be replaced when dependencies are built.
