file(REMOVE_RECURSE
  "CMakeFiles/viewcap_cli.dir/viewcap_cli.cc.o"
  "CMakeFiles/viewcap_cli.dir/viewcap_cli.cc.o.d"
  "viewcap_cli"
  "viewcap_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viewcap_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
